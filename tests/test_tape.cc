/**
 * @file
 * Tape engine tests: the optimizer pass (leaf hoisting, constant
 * folding, identity forwarding, DCE) must preserve forward values
 * and gradients bit for bit against the raw-tape reference
 * interpreters, and the batched SoA entry points (tape, MLP, cost
 * model, full gradient-search rounds) must be bit-identical per
 * point to their scalar counterparts. See docs/tape_engine.md for
 * the determinism argument these tests enforce.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>

#include "autodiff/gradcheck.h"
#include "costmodel/cost_model.h"
#include "costmodel/dataset.h"
#include "costmodel/mlp.h"
#include "expr/compiled.h"
#include "expr/tape.h"
#include "features/features.h"
#include "optim/search.h"
#include "sim/gpu_model.h"
#include "support/batch.h"
#include "support/rng.h"
#include "tir/ops.h"

namespace felix {
namespace expr {
namespace {

uint64_t
bitsOf(double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

/** Bit-level equality: distinguishes -0.0/+0.0, equates NaN bits. */
#define EXPECT_BITEQ(a, b)                                            \
    EXPECT_EQ(bitsOf(a), bitsOf(b)) << "values " << (a) << " vs "     \
                                    << (b)

/** Random expression tree (same shape as the test_fuzz_expr one). */
Expr
randomExpr(Rng &rng, const std::vector<std::string> &vars, int depth,
           bool smooth_only)
{
    if (depth <= 0 || rng.bernoulli(0.25)) {
        if (rng.bernoulli(0.5))
            return Expr::var(vars[rng.index(vars.size())]);
        return Expr::constant(rng.uniform(0.25, 4.0));
    }
    Expr a = randomExpr(rng, vars, depth - 1, smooth_only);
    Expr b = randomExpr(rng, vars, depth - 1, smooth_only);
    switch (rng.index(smooth_only ? 9 : 13)) {
      case 0: return a + b;
      case 1: return a - b;
      case 2: return a * b;
      case 3: return a / (abs(b) + 0.5);
      case 4: return exp(a * 0.25);
      case 5: return log(abs(a) + 0.5);
      case 6: return sqrt(abs(a) + 0.1);
      case 7: return sigmoid(a);
      case 8: return atan(a);
      case 9: return min(a, b);
      case 10: return max(a, b);
      case 11: return select(gt(a, b), a + 1.0, b * 2.0);
      default: return floor(a);
    }
}

// ---------------------------------------------------------------
// Synthetic raw tapes: the public Expr factories simplify at
// construction, so foldable/identity patterns must be fed to the
// optimizer directly in raw-tape form to exercise those passes.
// ---------------------------------------------------------------

RawInstr
constInstr(double value)
{
    RawInstr instr;
    instr.op = OpCode::ConstOp;
    instr.payload = value;
    return instr;
}

RawInstr
varInstr(int input_slot)
{
    RawInstr instr;
    instr.op = OpCode::VarOp;
    instr.payload = static_cast<double>(input_slot);
    return instr;
}

RawInstr
opInstr(OpCode op, int32_t a0, int32_t a1 = -1, int32_t a2 = -1)
{
    RawInstr instr;
    instr.op = op;
    instr.a0 = a0;
    instr.a1 = a1;
    instr.a2 = a2;
    return instr;
}

/** Raw and optimized execution of @p tape agree bit for bit. */
void
expectForwardBitExact(const RawTape &tape, bool forward_only,
                      const std::vector<double> &inputs)
{
    TapeProgram program = optimizeTape(tape, forward_only);
    std::vector<double> rawValues, rawOut, optValues, optOut;
    rawForward(tape, inputs, rawValues, rawOut);
    programForward(program, inputs, optValues, optOut);
    ASSERT_EQ(rawOut.size(), optOut.size());
    for (size_t k = 0; k < rawOut.size(); ++k)
        EXPECT_BITEQ(optOut[k], rawOut[k]);
}

TEST(TapeOptimizer, FoldsConstantChainsExactly)
{
    // (2.5 + 0.3) * (2.5 + 0.3): all-constant subgraph folds away.
    RawTape tape;
    tape.numVars = 0;
    tape.instrs = {
        constInstr(2.5),
        constInstr(0.3),
        opInstr(OpCode::Add, 0, 1),
        opInstr(OpCode::Mul, 2, 2),
    };
    tape.outputSlots = {3};

    TapeOptStats stats;
    TapeProgram program = optimizeTape(tape, false, &stats);
    EXPECT_EQ(program.instrs.size(), 0u);
    EXPECT_EQ(stats.constFolded, 2u);
    EXPECT_EQ(stats.leavesHoisted, 2u);
    expectForwardBitExact(tape, false, {});
    expectForwardBitExact(tape, true, {});
}

TEST(TapeOptimizer, ForwardsIdentitiesOnlyOnForwardOnlyTapes)
{
    // x * 1 with the same Mul result consumed twice (x*1 + x*1).
    RawTape tape;
    tape.numVars = 1;
    tape.instrs = {
        varInstr(0),
        constInstr(1.0),
        opInstr(OpCode::Mul, 0, 1),
        opInstr(OpCode::Add, 2, 2),
    };
    tape.outputSlots = {2, 3};

    TapeOptStats fwdStats;
    TapeProgram fwd = optimizeTape(tape, true, &fwdStats);
    EXPECT_EQ(fwdStats.identityForwarded, 1u);
    EXPECT_EQ(fwd.instrs.size(), 1u);   // only the Add survives

    TapeOptStats gradStats;
    TapeProgram grad = optimizeTape(tape, false, &gradStats);
    EXPECT_EQ(gradStats.identityForwarded, 0u);
    EXPECT_EQ(grad.instrs.size(), 2u);

    for (double x : {3.25, -0.0, 0.0, -17.5}) {
        expectForwardBitExact(tape, true, {x});
        expectForwardBitExact(tape, false, {x});
    }
}

TEST(TapeOptimizer, DoesNotEliminateAddOfPositiveZero)
{
    // x + (+0.0) is NOT an identity: it maps -0.0 to +0.0. The pass
    // must keep the instruction so the optimized tape still performs
    // the sign normalization.
    RawTape tape;
    tape.numVars = 1;
    tape.instrs = {
        varInstr(0),
        constInstr(+0.0),
        opInstr(OpCode::Add, 0, 1),
    };
    tape.outputSlots = {2};

    TapeOptStats stats;
    TapeProgram program = optimizeTape(tape, true, &stats);
    EXPECT_EQ(stats.identityForwarded, 0u);
    EXPECT_EQ(program.instrs.size(), 1u);

    std::vector<double> values, out;
    programForward(program, {-0.0}, values, out);
    EXPECT_BITEQ(out[0], +0.0);   // and not -0.0
    expectForwardBitExact(tape, true, {-0.0});

    // x + (-0.0) and x - (+0.0) ARE identities.
    RawTape negZero = tape;
    negZero.instrs[1] = constInstr(-0.0);
    TapeOptStats negStats;
    TapeProgram negProgram = optimizeTape(negZero, true, &negStats);
    EXPECT_EQ(negStats.identityForwarded, 1u);
    EXPECT_EQ(negProgram.instrs.size(), 0u);
    expectForwardBitExact(negZero, true, {-0.0});
    expectForwardBitExact(negZero, true, {2.75});
}

TEST(TapeOptimizer, RemovesDeadInstructions)
{
    // log(x) is computed but never reaches an output.
    RawTape tape;
    tape.numVars = 1;
    tape.instrs = {
        varInstr(0),
        constInstr(2.0),
        opInstr(OpCode::Log, 0),        // dead
        opInstr(OpCode::Mul, 0, 1),
    };
    tape.outputSlots = {3};

    TapeOptStats stats;
    TapeProgram program = optimizeTape(tape, false, &stats);
    EXPECT_EQ(stats.deadRemoved, 1u);
    EXPECT_EQ(program.instrs.size(), 1u);
    expectForwardBitExact(tape, false, {1.5});
}

// ---------------------------------------------------------------
// Randomized round-trips: optimizer output vs. raw reference.
// ---------------------------------------------------------------

TEST(TapeFuzz, OptimizedForwardBitExactOnRandomTrees)
{
    Rng rng(4242);
    const std::vector<std::string> vars = {"u", "v", "w"};
    for (int trial = 0; trial < 150; ++trial) {
        std::vector<Expr> roots;
        for (int r = 0; r < 3; ++r)
            roots.push_back(randomExpr(rng, vars, 5, false));
        CompiledExprs compiled(roots, vars);
        RawTape raw = buildRawTape(roots, compiled.varNames());
        for (bool forwardOnly : {false, true}) {
            for (int rep = 0; rep < 4; ++rep) {
                std::vector<double> x = {rng.uniform(-3.0, 3.0),
                                         rng.uniform(-3.0, 3.0),
                                         rng.uniform(0.1, 3.0)};
                expectForwardBitExact(raw, forwardOnly, x);
            }
        }
    }
}

TEST(TapeFuzz, OptimizedBackwardBitExactOnRandomTrees)
{
    // Gradient tapes (forward_only=false) must replay the exact
    // adjoint accumulation order of the raw tape: not close, equal.
    Rng rng(777);
    const std::vector<std::string> vars = {"u", "v"};
    for (int trial = 0; trial < 150; ++trial) {
        std::vector<Expr> roots;
        for (int r = 0; r < 2; ++r)
            roots.push_back(randomExpr(rng, vars, 5, false));
        CompiledExprs compiled(roots, vars);
        RawTape raw = buildRawTape(roots, compiled.varNames());
        TapeProgram program = optimizeTape(raw, false);
        for (int rep = 0; rep < 4; ++rep) {
            std::vector<double> x = {rng.uniform(-2.0, 2.0),
                                     rng.uniform(0.1, 2.5)};
            std::vector<double> seeds = {rng.uniform(-2.0, 2.0),
                                         rng.uniform(-2.0, 2.0)};
            std::vector<double> rawValues, rawOut, rawGrad;
            rawForward(raw, x, rawValues, rawOut);
            rawBackward(raw, rawValues, seeds, rawGrad);
            std::vector<double> optValues, optOut, optGrad;
            programForward(program, x, optValues, optOut);
            programBackward(program, optValues, seeds, optGrad);
            ASSERT_EQ(rawGrad.size(), optGrad.size());
            for (size_t i = 0; i < rawGrad.size(); ++i)
                EXPECT_BITEQ(optGrad[i], rawGrad[i]);
        }
    }
}

TEST(TapeFuzz, GradcheckPassesOnOptimizedTapes)
{
    // checkGradients differentiates through CompiledExprs, i.e.
    // through the optimized program: analytic gradients must still
    // match central differences after the optimizer pass.
    Rng rng(31);
    const std::vector<std::string> vars = {"u", "v"};
    int checked = 0;
    for (int trial = 0; trial < 60; ++trial) {
        Expr e = randomExpr(rng, vars, 4, /*smooth_only=*/true);
        std::unordered_map<std::string, double> env = {
            {"u", rng.uniform(0.3, 1.8)},
            {"v", rng.uniform(0.3, 1.8)},
        };
        double value = evalExpr(e, env);
        if (!std::isfinite(value) || std::abs(value) > 1e6)
            continue;
        auto result = autodiff::checkGradients(e, env, 1e-6, 5e-3);
        EXPECT_TRUE(result.passed)
            << e.str() << " rel err " << result.maxRelError;
        ++checked;
    }
    EXPECT_GT(checked, 30);
}

// ---------------------------------------------------------------
// Batched SoA engine vs. scalar engine.
// ---------------------------------------------------------------

TEST(BatchParity, TapeForwardBackwardMatchScalarAcrossWidths)
{
    Rng rng(9001);
    const std::vector<std::string> vars = {"u", "v", "w"};
    constexpr size_t L = kBatchLanes;
    for (int trial = 0; trial < 40; ++trial) {
        std::vector<Expr> roots;
        for (int r = 0; r < 4; ++r)
            roots.push_back(randomExpr(rng, vars, 5, false));
        CompiledExprs compiled(roots, vars);
        const size_t numVars = compiled.numVars();
        const size_t numOutputs = compiled.numOutputs();

        BatchEvalState batchState;
        EvalState scalarState;
        for (size_t width = 1; width <= L; ++width) {
            std::vector<std::vector<double>> points(width);
            std::vector<std::vector<double>> seeds(width);
            for (size_t l = 0; l < width; ++l) {
                for (size_t v = 0; v < numVars; ++v)
                    points[l].push_back(rng.uniform(-2.5, 2.5));
                for (size_t k = 0; k < numOutputs; ++k)
                    seeds[l].push_back(rng.uniform(-2.0, 2.0));
            }

            std::vector<double> inputs(numVars * L, 0.0);
            std::vector<double> outputGrads(numOutputs * L, 0.0);
            for (size_t l = 0; l < width; ++l) {
                for (size_t v = 0; v < numVars; ++v)
                    inputs[v * L + l] = points[l][v];
                for (size_t k = 0; k < numOutputs; ++k)
                    outputGrads[k * L + l] = seeds[l][k];
            }
            std::vector<double> outputs(numOutputs * L);
            std::vector<double> inputGrads(numVars * L);
            compiled.forwardBatch(inputs.data(), width,
                                  outputs.data(), batchState);
            compiled.backwardBatch(outputGrads.data(),
                                   inputGrads.data(), batchState);

            for (size_t l = 0; l < width; ++l) {
                std::vector<double> scalarOut, scalarGrad;
                compiled.forward(points[l], scalarOut, scalarState);
                compiled.backward(seeds[l], scalarGrad, scalarState);
                for (size_t k = 0; k < numOutputs; ++k)
                    EXPECT_BITEQ(outputs[k * L + l], scalarOut[k]);
                for (size_t v = 0; v < numVars; ++v)
                    EXPECT_BITEQ(inputGrads[v * L + l],
                                 scalarGrad[v]);
            }
        }
    }
}

TEST(BatchParity, MlpMatchesScalarPerLane)
{
    Rng rng(555);
    costmodel::MlpConfig config;
    config.layerSizes = {6, 16, 8, 1};
    costmodel::Mlp mlp(config, rng);
    constexpr size_t L = kBatchLanes;
    const size_t in = 6;

    costmodel::MlpBatchScratch batchScratch;
    costmodel::MlpScratch scalarScratch;
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<double> x(in * L);
        for (double &v : x)
            v = rng.uniform(-3.0, 3.0);
        double y[kBatchLanes];
        std::vector<double> dx(in * L);
        mlp.forwardInputGradBatch(x.data(), y, dx.data(),
                                  batchScratch);
        double yFwd[kBatchLanes];
        mlp.forwardBatch(x.data(), yFwd, batchScratch);

        for (size_t l = 0; l < L; ++l) {
            std::vector<double> point(in);
            for (size_t i = 0; i < in; ++i)
                point[i] = x[i * L + l];
            std::vector<double> scalarDx;
            double scalarY = mlp.forwardInputGrad(point, scalarDx,
                                                  scalarScratch);
            EXPECT_BITEQ(y[l], scalarY);
            EXPECT_BITEQ(yFwd[l], scalarY);
            EXPECT_BITEQ(yFwd[l],
                         mlp.forward(point, scalarScratch));
            for (size_t i = 0; i < in; ++i)
                EXPECT_BITEQ(dx[i * L + l], scalarDx[i]);
        }
    }
}

TEST(BatchParity, CostModelBatchMatchesScalarPerLane)
{
    Rng rng(808);
    const size_t dim = 5;
    std::vector<costmodel::Sample> samples;
    for (int i = 0; i < 64; ++i) {
        costmodel::Sample sample;
        for (size_t k = 0; k < dim; ++k)
            sample.rawFeatures.push_back(rng.uniform(1.0, 1e6));
        sample.latencySec = rng.uniform(1e-5, 1e-2);
        samples.push_back(std::move(sample));
    }
    costmodel::MlpConfig config;
    config.layerSizes = {static_cast<int>(dim), 16, 1};
    costmodel::CostModel model(config, 99);
    model.fit(samples, /*epochs=*/2, /*batch=*/16, /*lr=*/1e-3);

    constexpr size_t L = kBatchLanes;
    costmodel::PredictScratch scratch;
    for (int trial = 0; trial < 30; ++trial) {
        std::vector<double> raw(dim * L);
        for (double &v : raw)
            v = rng.uniform(0.5, 1e6);
        double scores[kBatchLanes];
        model.predictBatch(raw.data(), scores, scratch);

        std::vector<double> transformed(dim * L);
        for (size_t i = 0; i < dim * L; ++i)
            transformed[i] = costmodel::CostModel::inputTransform(
                raw[i]);
        double gradScores[kBatchLanes];
        std::vector<double> grads(dim * L);
        model.predictTransformedWithGradBatch(
            transformed.data(), gradScores, grads.data(), scratch);

        for (size_t l = 0; l < L; ++l) {
            std::vector<double> point(dim), pointT(dim);
            for (size_t i = 0; i < dim; ++i) {
                point[i] = raw[i * L + l];
                pointT[i] = transformed[i * L + l];
            }
            EXPECT_BITEQ(scores[l], model.predict(point));
            std::vector<double> scalarGrad;
            double scalarScore = model.predictTransformedWithGrad(
                pointT, scalarGrad);
            EXPECT_BITEQ(gradScores[l], scalarScore);
            for (size_t i = 0; i < dim; ++i)
                EXPECT_BITEQ(grads[i * L + l], scalarGrad[i]);
        }
    }
}

// ---------------------------------------------------------------
// End to end: a batched gradient-search round reproduces the scalar
// round bit for bit (candidates, features, scores, trace).
// ---------------------------------------------------------------

TEST(BatchParity, GradientSearchRoundMatchesScalarRound)
{
    costmodel::DatasetOptions datasetOptions;
    datasetOptions.numSubgraphs = 4;
    datasetOptions.schedulesPerSketch = 16;
    datasetOptions.seed = 3;
    auto samples = costmodel::synthesizeDataset(
        sim::deviceConfig(sim::DeviceKind::A5000), datasetOptions);
    costmodel::MlpConfig config;
    config.layerSizes = {82, 32, 1};
    costmodel::CostModel model(config, 11);
    model.fit(samples, /*epochs=*/2, /*batch=*/64, /*lr=*/1e-3);

    auto subgraph = tir::dense(128, 128, 128, false);
    optim::GradSearchOptions batched;
    batched.nSeeds = 5;   // deliberately not a multiple of the lanes
    batched.nSteps = 25;
    batched.nMeasure = 6;
    batched.useBatch = true;
    optim::GradSearchOptions scalar = batched;
    scalar.useBatch = false;

    optim::GradientSearch batchedSearch(subgraph, batched);
    optim::GradientSearch scalarSearch(subgraph, scalar);
    Rng rngA(2025), rngB(2025);
    auto batchedResult = batchedSearch.round(model, rngA);
    auto scalarResult = scalarSearch.round(model, rngB);

    ASSERT_EQ(batchedResult.toMeasure.size(),
              scalarResult.toMeasure.size());
    for (size_t i = 0; i < batchedResult.toMeasure.size(); ++i) {
        const optim::Candidate &a = batchedResult.toMeasure[i];
        const optim::Candidate &b = scalarResult.toMeasure[i];
        EXPECT_EQ(a.sketchIndex, b.sketchIndex);
        ASSERT_EQ(a.x.size(), b.x.size());
        for (size_t v = 0; v < a.x.size(); ++v)
            EXPECT_BITEQ(a.x[v], b.x[v]);
        ASSERT_EQ(a.rawFeatures.size(), b.rawFeatures.size());
        for (size_t k = 0; k < a.rawFeatures.size(); ++k)
            EXPECT_BITEQ(a.rawFeatures[k], b.rawFeatures[k]);
        EXPECT_BITEQ(a.predictedScore, b.predictedScore);
    }
    ASSERT_EQ(batchedResult.trace.visitedScores.size(),
              scalarResult.trace.visitedScores.size());
    for (size_t i = 0;
         i < batchedResult.trace.visitedScores.size(); ++i) {
        EXPECT_BITEQ(batchedResult.trace.visitedScores[i],
                     scalarResult.trace.visitedScores[i]);
    }
    EXPECT_EQ(batchedResult.trace.roundingAttempts,
              scalarResult.trace.roundingAttempts);
    EXPECT_EQ(batchedResult.trace.roundingInvalid,
              scalarResult.trace.roundingInvalid);
}

// ---------------------------------------------------------------
// Optimizer bookkeeping consumed by the tape.* metrics.
// ---------------------------------------------------------------

TEST(TapeStats, OptimizerShrinksProductionFeatureTapes)
{
    auto subgraph = tir::dense(128, 128, 128, false);
    optim::GradSearchOptions options;
    optim::GradientSearch search(subgraph, options);
    ASSERT_FALSE(search.sketches().empty());

    // Recompile one sketch's feature tape directly and check the
    // counters the constructor publishes as tape.* metrics.
    // (Leaves always hoist; production DAGs are pre-simplified, so
    // folding may legitimately find nothing.)
    const auto &sched = search.sketches().front();
    std::vector<std::string> varNames;
    for (const auto &domain : sched.vars)
        varNames.push_back(domain.name);
    CompiledExprs compiled(features::extractFeatures(sched.program),
                           varNames, /*forward_only=*/true);
    EXPECT_LT(compiled.optimizedSize(), compiled.tapeSize());
    const TapeOptStats &stats = compiled.optStats();
    EXPECT_GT(stats.leavesHoisted, 0u);
    EXPECT_EQ(compiled.tapeSize() - compiled.optimizedSize(),
              stats.leavesHoisted + stats.constFolded +
                  stats.identityForwarded + stats.deadRemoved);
}

} // namespace
} // namespace expr
} // namespace felix
