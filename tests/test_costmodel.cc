/**
 * @file
 * Tests for the MLP, scaler, cost model training, input gradients,
 * persistence, and the TenSet-substitute dataset synthesis.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <sstream>

#include "costmodel/cost_model.h"
#include "costmodel/dataset.h"
#include "costmodel/mlp.h"
#include "features/features.h"

namespace felix {
namespace costmodel {
namespace {

MlpConfig
tinyConfig(int inputs = 4)
{
    MlpConfig config;
    config.layerSizes = {inputs, 16, 16, 1};
    return config;
}

TEST(MlpTest, DeterministicForward)
{
    Rng rngA(5), rngB(5);
    Mlp a(tinyConfig(), rngA), b(tinyConfig(), rngB);
    std::vector<double> x = {0.1, -0.2, 0.3, 0.4};
    EXPECT_DOUBLE_EQ(a.forward(x), b.forward(x));
}

TEST(MlpTest, ParameterCount)
{
    Rng rng(1);
    Mlp mlp(tinyConfig(), rng);
    // 4*16+16 + 16*16+16 + 16*1+1 = 80 + 272 + 17 = 369.
    EXPECT_EQ(mlp.parameterCount(), 369u);
}

TEST(MlpTest, InputGradMatchesFiniteDifference)
{
    Rng rng(3);
    Mlp mlp(tinyConfig(), rng);
    std::vector<double> x = {0.3, -0.1, 0.7, 0.2};
    std::vector<double> grad;
    mlp.forwardInputGrad(x, grad);
    ASSERT_EQ(grad.size(), x.size());
    const double h = 1e-6;
    for (size_t i = 0; i < x.size(); ++i) {
        auto hi = x, lo = x;
        hi[i] += h;
        lo[i] -= h;
        double numeric = (mlp.forward(hi) - mlp.forward(lo)) / (2 * h);
        EXPECT_NEAR(grad[i], numeric, 1e-4) << "input " << i;
    }
}

TEST(MlpTest, LearnsLinearFunction)
{
    Rng rng(7);
    Mlp mlp(tinyConfig(), rng);
    // Target: y = 2a - b + 0.5c.
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    Rng data(11);
    for (int i = 0; i < 256; ++i) {
        std::vector<double> x = {data.uniform(-1, 1),
                                 data.uniform(-1, 1),
                                 data.uniform(-1, 1),
                                 data.uniform(-1, 1)};
        ys.push_back(2 * x[0] - x[1] + 0.5 * x[2]);
        xs.push_back(std::move(x));
    }
    double first = mlp.evaluate(xs, ys);
    for (int step = 0; step < 300; ++step)
        mlp.trainBatch(xs, ys, 3e-3);
    double last = mlp.evaluate(xs, ys);
    EXPECT_LT(last, first * 0.05);
    EXPECT_LT(last, 0.02);
}

TEST(MlpTest, SaveLoadRoundTrip)
{
    Rng rng(9);
    Mlp mlp(tinyConfig(), rng);
    std::vector<double> x = {0.5, 0.25, -0.75, 1.0};
    std::stringstream buffer;
    mlp.save(buffer);
    Mlp loaded = Mlp::load(buffer);
    EXPECT_DOUBLE_EQ(mlp.forward(x), loaded.forward(x));
}

TEST(ScalerTest, StandardizesColumns)
{
    Scaler scaler;
    scaler.fit({{0.0, 10.0}, {2.0, 10.0}, {4.0, 10.0}});
    auto z = scaler.apply({2.0, 10.0});
    EXPECT_NEAR(z[0], 0.0, 1e-12);
    EXPECT_NEAR(z[1], 0.0, 1e-12);   // constant column passes through
    auto z2 = scaler.apply({4.0, 10.0});
    EXPECT_GT(z2[0], 0.5);
}

TEST(CostModelTest, TransformAndTargets)
{
    EXPECT_DOUBLE_EQ(CostModel::inputTransform(0.0), 0.0);
    EXPECT_DOUBLE_EQ(CostModel::inputTransform(1.0), 0.0);
    EXPECT_NEAR(CostModel::inputTransform(std::exp(5.0)), 5.0, 1e-12);
    double latency = 3.5e-3;
    EXPECT_NEAR(CostModel::latencyOf(CostModel::targetOf(latency)),
                latency, 1e-9);
}

TEST(CostModelTest, LearnsToRankSyntheticSchedules)
{
    // Synthetic "latency" that depends on a few feature dimensions;
    // the model must learn enough to rank.
    Rng data(21);
    std::vector<Sample> samples;
    for (int i = 0; i < 600; ++i) {
        std::vector<double> raw(features::kNumFeatures, 0.0);
        for (int j = 0; j < features::kNumFeatures; ++j)
            raw[j] = std::exp(data.uniform(0.0, 8.0));
        Sample sample;
        sample.latencySec =
            1e-5 * (1.0 + raw[6] / 1e3) / (1.0 + std::sqrt(raw[12]));
        sample.rawFeatures = std::move(raw);
        samples.push_back(std::move(sample));
    }
    MlpConfig config;
    config.layerSizes = {features::kNumFeatures, 32, 32, 1};
    CostModel model(config, 77);
    model.fit(samples, /*epochs=*/60, /*batch=*/64, /*lr=*/2e-3);
    auto metrics = model.validate(samples);
    EXPECT_GT(metrics.rankCorrelation, 0.7);
}

TEST(CostModelTest, PredictWithGradConsistent)
{
    Rng data(31);
    std::vector<Sample> samples;
    for (int i = 0; i < 200; ++i) {
        std::vector<double> raw(features::kNumFeatures, 1.0);
        for (int j = 0; j < features::kNumFeatures; ++j)
            raw[j] = std::exp(data.uniform(0.0, 6.0));
        Sample sample;
        sample.rawFeatures = raw;
        sample.latencySec = 1e-4 * (1.0 + raw[0] * 1e-4);
        samples.push_back(std::move(sample));
    }
    MlpConfig config;
    config.layerSizes = {features::kNumFeatures, 16, 1};
    CostModel model(config, 3);
    model.fit(samples, 3, 64, 1e-3);

    std::vector<double> transformed =
        CostModel::transformFeatures(samples[0].rawFeatures);
    std::vector<double> grad;
    double score = model.predictTransformedWithGrad(transformed, grad);
    EXPECT_NEAR(score, model.predict(samples[0].rawFeatures), 1e-9);
    // Finite-difference check on one transformed coordinate.
    int idx = 6;
    const double h = 1e-5;
    auto hi = transformed, lo = transformed;
    hi[idx] += h;
    lo[idx] -= h;
    std::vector<double> tmp;
    double numeric = (model.predictTransformedWithGrad(hi, tmp) -
                      model.predictTransformedWithGrad(lo, tmp)) /
                     (2 * h);
    EXPECT_NEAR(grad[idx], numeric, 1e-4);
}

TEST(CostModelTest, SaveLoadPredictsIdentically)
{
    Rng data(41);
    std::vector<Sample> samples;
    for (int i = 0; i < 100; ++i) {
        std::vector<double> raw(features::kNumFeatures, 2.0);
        raw[0] = std::exp(data.uniform(0.0, 5.0));
        Sample sample;
        sample.rawFeatures = raw;
        sample.latencySec = 1e-4;
        samples.push_back(std::move(sample));
    }
    MlpConfig config;
    config.layerSizes = {features::kNumFeatures, 8, 1};
    CostModel model(config, 5);
    model.fit(samples, 2, 32, 1e-3);
    const std::string path = "test_cost_model_tmp.txt";
    model.save(path);
    auto loaded = CostModel::tryLoad(path);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_NEAR(model.predict(samples[0].rawFeatures),
                loaded->predict(samples[0].rawFeatures), 1e-12);
    std::remove(path.c_str());
}

TEST(CostModelTest, TryLoadMissingFileReturnsNullopt)
{
    EXPECT_FALSE(CostModel::tryLoad("/nonexistent/file.txt")
                     .has_value());
}

TEST(CostModelTest, FinetuneShiftsPredictions)
{
    Rng data(51);
    std::vector<Sample> samples;
    for (int i = 0; i < 120; ++i) {
        std::vector<double> raw(features::kNumFeatures, 1.0);
        raw[6] = std::exp(data.uniform(2.0, 8.0));
        Sample sample;
        sample.rawFeatures = raw;
        sample.latencySec = 1e-4;
        samples.push_back(std::move(sample));
    }
    MlpConfig config;
    config.layerSizes = {features::kNumFeatures, 16, 1};
    CostModel model(config, 6);
    // Fit until predictions approach the true target -log(1e-4).
    model.fit(samples, 40, 64, 2e-3);
    double before = model.predict(samples[0].rawFeatures);
    EXPECT_NEAR(before, CostModel::targetOf(1e-4), 1.5);
    // Fresh measurements say everything is 10x slower.
    std::vector<Sample> fresh = samples;
    for (Sample &sample : fresh)
        sample.latencySec = 1e-3;
    model.finetune(fresh, 128, 1e-3);
    double after = model.predict(samples[0].rawFeatures);
    EXPECT_LT(after, before);
}

TEST(Dataset, PoolIsDiverseAndDeterministic)
{
    Rng rngA(99), rngB(99);
    auto poolA = datasetSubgraphPool(24, rngA);
    auto poolB = datasetSubgraphPool(24, rngB);
    ASSERT_EQ(poolA.size(), 24u);
    for (size_t i = 0; i < poolA.size(); ++i) {
        EXPECT_EQ(poolA[i].structuralHash(),
                  poolB[i].structuralHash());
    }
    // At least two distinct operator families.
    std::set<std::string> prefixes;
    for (const auto &subgraph : poolA) {
        prefixes.insert(
            subgraph.name.substr(0, subgraph.name.rfind('_')));
    }
    EXPECT_GE(prefixes.size(), 3u);
}

TEST(Dataset, PretrainedModelCacheRoundTrip)
{
    DatasetOptions options;
    options.numSubgraphs = 3;
    options.schedulesPerSketch = 8;
    options.seed = 77;
    const std::string cacheDir = "test_pretrained_tmp";
    auto first = pretrainedCostModel(sim::DeviceKind::A5000, cacheDir,
                                     options);
    // Second call must hit the cache and predict identically.
    auto second = pretrainedCostModel(sim::DeviceKind::A5000,
                                      cacheDir, options);
    std::vector<double> raw(features::kNumFeatures, 3.0);
    EXPECT_DOUBLE_EQ(first.predict(raw), second.predict(raw));
    std::filesystem::remove_all(cacheDir);
}

TEST(Dataset, SynthesizedSamplesAreWellFormed)
{
    DatasetOptions options;
    options.numSubgraphs = 4;
    options.schedulesPerSketch = 8;
    auto samples = synthesizeDataset(
        sim::deviceConfig(sim::DeviceKind::A5000), options);
    EXPECT_GE(samples.size(), 32u);
    for (const Sample &sample : samples) {
        EXPECT_EQ(sample.rawFeatures.size(),
                  static_cast<size_t>(features::kNumFeatures));
        EXPECT_GT(sample.latencySec, 0.0);
        EXPECT_LT(sample.latencySec, 10.0);
    }
}

} // namespace
} // namespace costmodel
} // namespace felix
