/**
 * @file
 * Tests of the deterministic sharding subsystem (docs/distributed.md):
 * stable task ownership, preassigned Rng streams, bit-exact state
 * round-trips (Rng, CostModel, GraphTuner), crash-safe checkpoint
 * framing, manifest parsing, in-process shard-count invariance of the
 * merged artifacts, and checkpoint torture (truncation, bit flips,
 * version flips, deletion) with bit-identical resume.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "costmodel/dataset.h"
#include "graph/graph.h"
#include "shard/checkpoint.h"
#include "shard/manifest.h"
#include "shard/merge.h"
#include "shard/shard.h"
#include "support/rng.h"
#include "tuner/tuner.h"

namespace felix {
namespace shard {
namespace {

/** Small deterministic cost model shared by the shard tests. */
const costmodel::CostModel &
testModel()
{
    static const costmodel::CostModel model = [] {
        costmodel::DatasetOptions options;
        options.numSubgraphs = 10;
        options.schedulesPerSketch = 48;
        options.seed = 7;
        auto samples = costmodel::synthesizeDataset(
            sim::deviceConfig(sim::DeviceKind::A5000), options);
        costmodel::MlpConfig config;
        config.layerSizes = {82, 64, 64, 1};
        costmodel::CostModel model(config, 7);
        model.fit(samples, 8, 128, 1.5e-3);
        return model;
    }();
    return model;
}

/** A small two-task network for quick sharded runs. */
std::vector<graph::Task>
tinyTasks()
{
    graph::Graph g("tiny");
    tir::Conv2dConfig conv;
    conv.c = 32;
    conv.h = conv.w = 28;
    conv.k = 64;
    int x = g.addConv2d(conv, -1, "conv");
    x = g.addEpilogue(graph::OpType::Relu, x);
    graph::DenseParams fc;
    fc.n = 64;
    fc.m = 256;
    fc.k = 256;
    g.addDense(fc, x, "fc");
    return graph::partition(g);
}

ShardOptions
fastShardOptions(const std::string &dir, int shards, int shard_id)
{
    ShardOptions options;
    options.seed = 1;
    options.shards = shards;
    options.shardId = shard_id;
    options.roundsPerTask = 2;
    options.grad.nSeeds = 4;
    options.grad.nSteps = 48;
    options.grad.nMeasure = 8;
    options.dir = dir;
    return options;
}

std::string
makeTempDir()
{
    char path[] = "/tmp/felix_shard_test_XXXXXX";
    const char *made = ::mkdtemp(path);
    EXPECT_NE(made, nullptr);
    return path;
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

void
spit(const std::string &path, const std::string &text)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << text;
}

/** Run every shard of a K-way run to completion in @p dir. */
void
runAllShards(const std::string &dir, int shards)
{
    for (int i = 0; i < shards; ++i) {
        ShardRunner runner(tinyTasks(), testModel(),
                           Device::cuda("a5000"),
                           fastShardOptions(dir, shards, i));
        ASSERT_EQ(runner.run(), 0) << "shard " << i << " of "
                                   << shards;
    }
}

/** The five merged artifacts of @p dir, concatenated. */
std::string
mergedBytes(const std::string &dir)
{
    auto result = mergeShards(dir);
    EXPECT_TRUE(result.has_value()) << "merge failed in " << dir;
    return slurp(mergedRecordsPath(dir)) + "\x01" +
           slurp(mergedRoundsPath(dir)) + "\x01" +
           slurp(mergedBestPath(dir)) + "\x01" +
           slurp(mergedModulePath(dir)) + "\x01" +
           slurp(mergedMetricsPath(dir));
}

TEST(ShardOf, StableAndInRange)
{
    for (uint64_t hash : {1ull, 42ull, 0xdeadbeefull,
                          0xffffffffffffffffull}) {
        EXPECT_EQ(shardOf(hash, 1), 0);
        for (int shards : {2, 3, 7}) {
            const int owner = shardOf(hash, shards);
            EXPECT_GE(owner, 0);
            EXPECT_LT(owner, shards);
            EXPECT_EQ(owner, shardOf(hash, shards));
        }
    }
}

TEST(ShardOf, MixesBeyondModulo)
{
    // Hashes congruent mod K must not all land on the same shard —
    // ownership mixes the hash rather than using `hash % K`, so a
    // structural-hash pattern cannot starve a shard.
    int owners[2] = {0, 0};
    for (uint64_t i = 0; i < 64; ++i)
        ++owners[shardOf(i * 2, 2)];
    EXPECT_GT(owners[0], 0);
    EXPECT_GT(owners[1], 0);
}

TEST(StreamAt, PositionIndependentAndKeyed)
{
    Rng a = Rng::streamAt(1, 3, 5);
    // Unrelated draws elsewhere must not move the stream.
    Rng noise(99);
    noise.uniform();
    Rng b = Rng::streamAt(1, 3, 5);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(a.next(), b.next());

    EXPECT_NE(Rng::streamAt(1, 3, 5).next(),
              Rng::streamAt(1, 3, 6).next());
    EXPECT_NE(Rng::streamAt(1, 3, 5).next(),
              Rng::streamAt(1, 4, 5).next());
    EXPECT_NE(Rng::streamAt(1, 3, 5).next(),
              Rng::streamAt(2, 3, 5).next());
}

TEST(RngState, RoundTripsMidStreamBitExact)
{
    Rng original(7);
    // Odd number of normal() draws leaves a buffered Box-Muller
    // spare — the part of the state a naive save would lose.
    original.normal();
    original.normal();
    original.normal();

    std::ostringstream saved;
    original.saveState(saved);
    Rng restored(0);
    std::istringstream load(saved.str());
    ASSERT_TRUE(restored.loadState(load));

    for (int i = 0; i < 16; ++i) {
        const double a = original.normal();
        const double b = restored.normal();
        EXPECT_EQ(a, b);
        EXPECT_EQ(original.next(), restored.next());
    }
}

TEST(Checkpoint, RoundTripsAndDetectsCorruption)
{
    const std::string dir = makeTempDir();
    const std::string path = dir + "/ckpt.1";
    const std::string payload = "hello checkpoint\nwith lines\n";
    ASSERT_TRUE(writeCheckpoint(path, payload));
    auto read = readCheckpoint(path);
    ASSERT_TRUE(read.has_value());
    EXPECT_EQ(*read, payload);

    // Truncation mid-payload: shorter than the header promises.
    std::string bytes = slurp(path);
    spit(path, bytes.substr(0, bytes.size() - 5));
    EXPECT_FALSE(readCheckpoint(path).has_value());

    // A single flipped payload bit fails the checksum.
    std::string flipped = bytes;
    flipped[flipped.size() - 3] ^= 0x20;
    spit(path, flipped);
    EXPECT_FALSE(readCheckpoint(path).has_value());

    // A flipped version byte fails the header parse.
    std::string versioned = bytes;
    const size_t v = versioned.find("v1");
    ASSERT_NE(v, std::string::npos);
    versioned[v + 1] = '2';
    spit(path, versioned);
    EXPECT_FALSE(readCheckpoint(path).has_value());

    EXPECT_FALSE(readCheckpoint(dir + "/absent").has_value());
}

TEST(Checkpoint, ListSortsNumerically)
{
    const std::string dir = makeTempDir();
    for (const char *name : {"shard-0.2", "shard-0.10", "shard-0.3",
                             "shard-1.1", "shard-0.notanumber"})
        spit(dir + "/" + name, "x");
    auto rounds = listCheckpoints(dir, "shard-0.");
    ASSERT_EQ(rounds.size(), 3u);
    EXPECT_EQ(rounds[0], 2u);
    EXPECT_EQ(rounds[1], 3u);
    EXPECT_EQ(rounds[2], 10u);
}

TEST(Manifest, RoundTripsThroughJsonl)
{
    ShardManifest manifest;
    manifest.seed = 0xfeedfacecafebeefull;
    manifest.shards = 2;
    manifest.shardId = 1;
    manifest.roundsPerTask = 4;
    manifest.strategy = "Felix";
    manifest.device = "a5000";
    manifest.graphExecOverheadSec = 15e-6;
    manifest.tasks = {{0, 0xdeadbeefdeadbeefull, "conv \"x\"", 3},
                      {1, 42, "fc", 1}};

    const std::string dir = makeTempDir();
    const std::string path = shardManifestPath(dir, 1);
    {
        std::ofstream os(path);
        os << manifestHeaderJson(manifest) << "\n";
        os << manifestRoundJson({1, 1, 8, 1}) << "\n";
        os << manifestRoundJson({3, 1, 8, 1}) << "\n";
        ManifestBest best;
        best.index = 1;
        best.sketchIndex = 2;
        best.latencySec = 1.5e-5;
        best.clockSec = 12.25;
        best.vars = {4.0, 8.0};
        os << manifestDoneJson(3, {best}) << "\n";
    }

    auto loaded = loadManifest(path);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->seed, manifest.seed);
    EXPECT_EQ(loaded->shards, 2);
    EXPECT_EQ(loaded->shardId, 1);
    EXPECT_EQ(loaded->roundsPerTask, 4);
    EXPECT_EQ(loaded->strategy, "Felix");
    ASSERT_EQ(loaded->tasks.size(), 2u);
    EXPECT_EQ(loaded->tasks[0].hash, 0xdeadbeefdeadbeefull);
    EXPECT_EQ(loaded->tasks[0].label, "conv \"x\"");
    EXPECT_EQ(loaded->tasks[0].weight, 3);
    ASSERT_EQ(loaded->rounds.size(), 2u);
    EXPECT_EQ(loaded->rounds[1].g, 3);
    EXPECT_EQ(loaded->rounds[1].recordsLines, 8);
    EXPECT_TRUE(loaded->done);
    EXPECT_EQ(loaded->lastG, 3);
    ASSERT_EQ(loaded->bests.size(), 1u);
    EXPECT_EQ(loaded->bests[0].sketchIndex, 2);
    EXPECT_EQ(loaded->bests[0].latencySec, 1.5e-5);
    ASSERT_EQ(loaded->bests[0].vars.size(), 2u);
    EXPECT_EQ(loaded->bests[0].vars[1], 8.0);

    EXPECT_TRUE(manifestsCompatible(*loaded, *loaded));
    ShardManifest other = *loaded;
    other.seed ^= 1;
    EXPECT_FALSE(manifestsCompatible(*loaded, other));
    other = *loaded;
    other.tasks[0].hash ^= 1;
    EXPECT_FALSE(manifestsCompatible(*loaded, other));
}

TEST(StateRoundTrip, CostModelBitExact)
{
    std::ostringstream first;
    testModel().saveState(first);

    std::istringstream load(first.str());
    auto reloaded = costmodel::CostModel::loadState(load);
    ASSERT_TRUE(reloaded.has_value());
    std::ostringstream second;
    reloaded->saveState(second);
    EXPECT_EQ(first.str(), second.str());
}

tuner::TunerOptions
fastTunerOptions()
{
    tuner::TunerOptions options;
    options.strategy = tuner::StrategyKind::FelixGradient;
    options.seed = 1;
    options.grad.nSeeds = 4;
    options.grad.nSteps = 48;
    options.grad.nMeasure = 8;
    return options;
}

TEST(StateRoundTrip, GraphTunerBitExact)
{
    tuner::GraphTuner tuned(tinyTasks(), testModel(),
                            sim::DeviceKind::A5000,
                            fastTunerOptions());
    tuned.tuneTaskRound(0);
    tuned.tuneTaskRound(1);
    std::ostringstream first;
    tuned.saveState(first);

    // A fresh tuner over the same tasks restores the blob; saving it
    // back must reproduce the exact bytes.
    tuner::GraphTuner fresh(tinyTasks(), testModel(),
                            sim::DeviceKind::A5000,
                            fastTunerOptions());
    std::istringstream load(first.str());
    ASSERT_TRUE(fresh.loadState(load));
    EXPECT_EQ(fresh.pendingRestoreCount(), 0u);
    std::ostringstream second;
    fresh.saveState(second);
    EXPECT_EQ(first.str(), second.str());
}

TEST(StateRoundTrip, GraphTunerResumeContinuesIdentically)
{
    tuner::GraphTuner reference(tinyTasks(), testModel(),
                                sim::DeviceKind::A5000,
                                fastTunerOptions());
    reference.tuneTaskRound(0);
    reference.tuneTaskRound(1);
    std::ostringstream saved;
    reference.saveState(saved);

    tuner::GraphTuner resumed(tinyTasks(), testModel(),
                              sim::DeviceKind::A5000,
                              fastTunerOptions());
    std::istringstream load(saved.str());
    ASSERT_TRUE(resumed.loadState(load));

    // The suffix of rounds after the save point must be bit-equal
    // between the uninterrupted tuner and the restored one.
    for (int round = 0; round < 2; ++round) {
        reference.tuneTaskRound(round % 2);
        resumed.tuneTaskRound(round % 2);
    }
    EXPECT_EQ(reference.clockNow(), resumed.clockNow());
    EXPECT_EQ(reference.totalMeasurements(),
              resumed.totalMeasurements());
    ASSERT_EQ(reference.taskRecords().size(),
              resumed.taskRecords().size());
    for (size_t i = 0; i < reference.taskRecords().size(); ++i) {
        EXPECT_EQ(reference.taskRecords()[i].bestLatencySec,
                  resumed.taskRecords()[i].bestLatencySec);
        EXPECT_EQ(reference.taskRecords()[i].rounds,
                  resumed.taskRecords()[i].rounds);
    }
}

TEST(ShardRunner, MergedOutputInvariantAcrossShardCounts)
{
    const std::string one = makeTempDir();
    runAllShards(one, 1);
    const std::string reference = mergedBytes(one);
    ASSERT_FALSE(reference.empty());

    const std::string two = makeTempDir();
    runAllShards(two, 2);
    EXPECT_EQ(reference, mergedBytes(two));
}

/** Newest checkpoint file of shard 0 in @p dir. */
std::string
newestCheckpoint(const std::string &dir)
{
    const std::string prefix = "shard-0.";
    auto rounds = listCheckpoints(shardCheckpointDir(dir), prefix);
    EXPECT_FALSE(rounds.empty());
    return shardCheckpointDir(dir) + "/" + prefix +
           std::to_string(rounds.back());
}

/**
 * Corrupt a finished single-shard run with @p damage, resume it, and
 * require the resumed artifacts byte-identical to @p reference.
 */
void
tortureAndResume(const std::string &reference,
                 void (*damage)(const std::string &dir))
{
    const std::string dir = makeTempDir();
    runAllShards(dir, 1);
    damage(dir);
    ShardOptions options = fastShardOptions(dir, 1, 0);
    options.resume = true;
    ShardRunner resumed(tinyTasks(), testModel(),
                        Device::cuda("a5000"), options);
    ASSERT_EQ(resumed.run(), 0);
    EXPECT_EQ(slurp(shardRecordsPath(reference, 0)),
              slurp(shardRecordsPath(dir, 0)));
    EXPECT_EQ(slurp(shardRoundsPath(reference, 0)),
              slurp(shardRoundsPath(dir, 0)));
    EXPECT_EQ(slurp(shardManifestPath(reference, 0)),
              slurp(shardManifestPath(dir, 0)));
    EXPECT_EQ(slurp(shardMetricsPath(reference, 0)),
              slurp(shardMetricsPath(dir, 0)));
}

class CheckpointTorture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        reference_ = new std::string(makeTempDir());
        runAllShards(*reference_, 1);
    }

    static std::string *reference_;
};

std::string *CheckpointTorture::reference_ = nullptr;

TEST_F(CheckpointTorture, TruncatedMidRecordFallsBack)
{
    tortureAndResume(*reference_, [](const std::string &dir) {
        const std::string path = newestCheckpoint(dir);
        const std::string bytes = slurp(path);
        ASSERT_GT(bytes.size(), 64u);
        spit(path, bytes.substr(0, bytes.size() / 2));
    });
}

TEST_F(CheckpointTorture, FlippedVersionByteFallsBack)
{
    tortureAndResume(*reference_, [](const std::string &dir) {
        const std::string path = newestCheckpoint(dir);
        std::string bytes = slurp(path);
        const size_t v = bytes.find("v1");
        ASSERT_NE(v, std::string::npos);
        bytes[v + 1] = '9';
        spit(path, bytes);
    });
}

TEST_F(CheckpointTorture, FlippedPayloadBitFailsChecksum)
{
    tortureAndResume(*reference_, [](const std::string &dir) {
        const std::string path = newestCheckpoint(dir);
        std::string bytes = slurp(path);
        ASSERT_GT(bytes.size(), 64u);
        bytes[bytes.size() - 7] ^= 0x01;
        spit(path, bytes);
    });
}

TEST_F(CheckpointTorture, DeletedNewestCheckpointFallsBack)
{
    tortureAndResume(*reference_, [](const std::string &dir) {
        ::unlink(newestCheckpoint(dir).c_str());
    });
}

TEST_F(CheckpointTorture, AllCheckpointsGoneRestartsFresh)
{
    tortureAndResume(*reference_, [](const std::string &dir) {
        const std::string prefix = "shard-0.";
        for (uint64_t round :
             listCheckpoints(shardCheckpointDir(dir), prefix)) {
            ::unlink((shardCheckpointDir(dir) + "/" + prefix +
                      std::to_string(round))
                         .c_str());
        }
    });
}

TEST(Merge, RefusesIncompleteShardDirectory)
{
    const std::string dir = makeTempDir();
    // Only shard 1 of a 2-shard run present: no shard-0 manifest.
    ShardRunner runner(tinyTasks(), testModel(),
                       Device::cuda("a5000"),
                       fastShardOptions(dir, 2, 1));
    ASSERT_EQ(runner.run(), 0);
    EXPECT_FALSE(mergeShards(dir).has_value());
}

} // namespace
} // namespace shard
} // namespace felix
