# Serving smoke test (ctest): drive `felix-serve --stdio` through a
# fixed three-request trace covering cache miss -> background tuning
# -> cache hit, and enforce the determinism contract of
# docs/serving.md: the same trace replayed twice, and replayed at
# --jobs 4, must produce byte-identical responses (responses carry no
# wall-clock state, so no normalization is needed — unlike the
# felix-tune metrics log).
#
# Invoked as
#   cmake -DFELIX_SERVE=... -DWORK_DIR=... -DCACHE_DIR=...
#         -P serve_smoke.cmake
#
# Steps:
#   1. Write a request trace: dcgan@1 (all misses), dcgan@2 (new
#      shapes, misses again), two tuning rounds, dcgan@1 again (all
#      hits, served without new measurements), stats, shutdown.
#   2. Run the trace three times: --jobs 1 twice and --jobs 4 once,
#      persisting the schedule cache of the first run to a records
#      log. All three stdout captures must be byte-identical.
#   3. The final tune response must be answered from the cache
#      ("cache_hits" > 0 with zero misses) and the stats response
#      must report the traffic split.
#   4. A fresh daemon warm-started from the records log must answer
#      the dcgan@1 request from the cache immediately (a restart
#      keeps the fleet's tuning work).

foreach(var FELIX_SERVE TRACE_SUMMARY WORK_DIR CACHE_DIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "serve_smoke: missing -D${var}")
    endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(trace "${WORK_DIR}/trace.ndjson")
file(WRITE "${trace}"
"{\"op\":\"tune\",\"network\":\"dcgan\",\"batch\":1}
{\"op\":\"tune\",\"network\":\"dcgan\",\"batch\":2}
{\"op\":\"rounds\",\"n\":2}
{\"op\":\"tune\",\"network\":\"dcgan\",\"batch\":1}
{\"op\":\"stats\"}
{\"op\":\"shutdown\"}
")

function(run_serve tag jobs)
    set(extra ${ARGN})
    execute_process(
        COMMAND "${FELIX_SERVE}" --stdio
            --device a5000 --seed 3 --jobs ${jobs}
            --cache-dir "${CACHE_DIR}"
            ${extra}
        INPUT_FILE "${trace}"
        OUTPUT_FILE "${WORK_DIR}/out_${tag}.ndjson"
        ERROR_VARIABLE err
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
            "felix-serve ${tag} failed (${rc}):\n${err}")
    endif()
endfunction()

run_serve(a 1 --records "${WORK_DIR}/records.log"
            --serve-log "${WORK_DIR}/serve.jsonl")
run_serve(b 1)
run_serve(j4 4)

foreach(other b j4)
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E compare_files
            "${WORK_DIR}/out_a.ndjson" "${WORK_DIR}/out_${other}.ndjson"
        RESULT_VARIABLE diff)
    if(NOT diff EQUAL 0)
        message(FATAL_ERROR
            "serve responses differ between runs a and ${other} "
            "(${WORK_DIR}/out_a.ndjson vs out_${other}.ndjson): the "
            "determinism contract of docs/serving.md is broken")
    endif()
endforeach()

file(STRINGS "${WORK_DIR}/out_a.ndjson" responses)
list(LENGTH responses count)
if(NOT count EQUAL 6)
    message(FATAL_ERROR "expected 6 response lines, got ${count}")
endif()

# Request 1 and 2 are all cache misses; request 4 (index 3) repeats
# request 1 and must be answered entirely from the cache.
list(GET responses 0 first_tune)
if(NOT first_tune MATCHES "\"cache_hits\":0" OR
   NOT first_tune MATCHES "\"cache_misses\":[1-9]")
    message(FATAL_ERROR
        "cold-start tune was not all misses: ${first_tune}")
endif()
list(GET responses 3 repeat_tune)
if(NOT repeat_tune MATCHES "\"cache_hits\":[1-9]" OR
   NOT repeat_tune MATCHES "\"cache_misses\":0")
    message(FATAL_ERROR
        "repeat tune was not served from the cache: ${repeat_tune}")
endif()
list(GET responses 2 rounds)
if(NOT rounds MATCHES "\"ran\":2")
    message(FATAL_ERROR "background rounds did not run: ${rounds}")
endif()
list(GET responses 4 stats)
if(NOT stats MATCHES "\"heavy_hitters\":\\[{")
    message(FATAL_ERROR "stats reported no heavy hitters: ${stats}")
endif()

# The persisted records log must warm-start a fresh daemon: the same
# dcgan@1 request is now a pure cache hit with no tuning at all.
if(NOT EXISTS "${WORK_DIR}/records.log")
    message(FATAL_ERROR "run a persisted no records log")
endif()
file(WRITE "${WORK_DIR}/warm_trace.ndjson"
"{\"op\":\"tune\",\"network\":\"dcgan\",\"batch\":1}
{\"op\":\"shutdown\"}
")
execute_process(
    COMMAND "${FELIX_SERVE}" --stdio
        --device a5000 --seed 3 --jobs 1
        --cache-dir "${CACHE_DIR}"
        --records "${WORK_DIR}/records.log"
    INPUT_FILE "${WORK_DIR}/warm_trace.ndjson"
    OUTPUT_FILE "${WORK_DIR}/out_warm.ndjson"
    ERROR_VARIABLE err
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "warm-start run failed (${rc}):\n${err}")
endif()
file(STRINGS "${WORK_DIR}/out_warm.ndjson" warm)
list(GET warm 0 warm_tune)
if(NOT warm_tune MATCHES "\"cache_hits\":[1-9]" OR
   NOT warm_tune MATCHES "\"cache_misses\":0")
    message(FATAL_ERROR
        "warm-started daemon did not answer from the persisted "
        "cache: ${warm_tune}")
endif()

# The serve log (one JSONL line per request plus a final metrics
# snapshot) must aggregate cleanly: felix-trace-summary exits
# non-zero on any malformed line.
execute_process(
    COMMAND "${TRACE_SUMMARY}" --serve "${WORK_DIR}/serve.jsonl"
    OUTPUT_VARIABLE summary
    ERROR_VARIABLE err
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
        "felix-trace-summary rejected the serve log (${rc}):\n${err}")
endif()
if(NOT summary MATCHES "hit rate" OR
   NOT summary MATCHES "serve.requests")
    message(FATAL_ERROR
        "serve-log summary missing expected sections:\n${summary}")
endif()

message(STATUS
    "serve smoke OK: deterministic replay, cache hits, warm start, "
    "log aggregation")
