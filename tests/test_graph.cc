/**
 * @file
 * Tests for computation graphs, fusion-pattern partitioning, task
 * deduplication, and the six network models.
 */
#include <gtest/gtest.h>

#include "graph/graph.h"
#include "models/models.h"

namespace felix {
namespace graph {
namespace {

TEST(GraphBuild, NodesAndEdges)
{
    Graph g("test");
    tir::Conv2dConfig conv;
    conv.c = 16;
    conv.h = conv.w = 32;
    conv.k = 32;
    int c1 = g.addConv2d(conv, -1, "conv1");
    int r1 = g.addEpilogue(OpType::Relu, c1);
    EXPECT_EQ(g.nodes().size(), 2u);
    EXPECT_EQ(g.nodes()[r1].inputs[0], c1);
    EXPECT_EQ(g.nodes()[r1].outputElems, g.nodes()[c1].outputElems);
}

TEST(Partition, ConvBnReluFusesIntoOneTask)
{
    Graph g("test");
    tir::Conv2dConfig conv;
    conv.c = 16;
    conv.h = conv.w = 32;
    conv.k = 32;
    int c1 = g.addConv2d(conv, -1, "conv1");
    int bn = g.addEpilogue(OpType::BatchNorm, c1);
    g.addEpilogue(OpType::Relu, bn);
    auto tasks = partition(g);
    ASSERT_EQ(tasks.size(), 1u);
    EXPECT_EQ(tasks[0].anchorType, OpType::Conv2d);
    // BatchNorm became the bias-add epilogue stage.
    EXPECT_EQ(tasks[0].subgraph.ops.size(), 2u);
}

TEST(Partition, RepeatedBlocksDeduplicateWithWeights)
{
    Graph g("test");
    tir::Conv2dConfig conv;
    conv.c = 64;
    conv.h = conv.w = 28;
    conv.k = 64;
    int x = -1;
    for (int i = 0; i < 5; ++i) {
        x = g.addConv2d(conv, x, "conv");
        x = g.addEpilogue(OpType::Relu, x);
    }
    auto tasks = partition(g);
    ASSERT_EQ(tasks.size(), 1u);
    EXPECT_EQ(tasks[0].weight, 5);
}

TEST(Partition, ResidualAddBecomesElementwiseTask)
{
    Graph g("test");
    tir::Conv2dConfig conv;
    conv.c = 32;
    conv.h = conv.w = 16;
    conv.k = 32;
    int a = g.addConv2d(conv, -1, "a");
    int b = g.addConv2d(conv, -1, "b");
    int sum = g.addAdd(a, b, "residual");
    g.addEpilogue(OpType::Relu, sum);
    auto tasks = partition(g);
    // conv (x2 dedup -> weight 2) + add task.
    ASSERT_EQ(tasks.size(), 2u);
    int convIdx = tasks[0].anchorType == OpType::Conv2d ? 0 : 1;
    EXPECT_EQ(tasks[convIdx].weight, 2);
    EXPECT_EQ(tasks[1 - convIdx].anchorType, OpType::Elementwise);
    // The ReLU after the add fused into the elementwise task.
    EXPECT_GT(tasks[1 - convIdx].subgraph.ops[0].arith.cmp, 0.0);
}

TEST(Partition, SharedOutputBlocksFusion)
{
    // A conv feeding two consumers cannot absorb either of them.
    Graph g("test");
    tir::Conv2dConfig conv;
    conv.c = 16;
    conv.h = conv.w = 16;
    conv.k = 16;
    int c1 = g.addConv2d(conv, -1, "conv");
    g.addEpilogue(OpType::Relu, c1, "relu_a");
    g.addEpilogue(OpType::Relu, c1, "relu_b");
    auto tasks = partition(g);
    // conv (unfused) + two relu elementwise tasks (deduped).
    ASSERT_EQ(tasks.size(), 2u);
}

TEST(Partition, BiasThenReluBothFuse)
{
    Graph g("test");
    DenseParams params;
    params.n = 64;
    params.m = 256;
    params.k = 256;
    int d = g.addDense(params, -1, "fc");
    int bias = g.addEpilogue(OpType::BiasAdd, d);
    g.addEpilogue(OpType::Relu, bias);
    auto tasks = partition(g);
    ASSERT_EQ(tasks.size(), 1u);
    ASSERT_EQ(tasks[0].subgraph.ops.size(), 2u);
    // ReLU cost is folded into the bias-add epilogue stage.
    EXPECT_GT(tasks[0].subgraph.ops[1].arith.cmp, 0.0);
}

TEST(Models, ResNet50Structure)
{
    auto g = models::resnet50(1);
    auto tasks = partition(g);
    // ResNet-50 has ~25 distinct fused tasks after deduplication.
    EXPECT_GE(tasks.size(), 18u);
    EXPECT_LE(tasks.size(), 40u);
    // Total weighted task count covers all 53 convs + fc + pools.
    int total = 0;
    for (const auto &task : tasks)
        total += task.weight;
    EXPECT_GE(total, 55);
    // ~4 GFLOPs less the graph at 224x224 resolution.
    EXPECT_NEAR(g.totalFlops() / 1e9, 8.2, 2.5);
}

TEST(Models, MobileNetHasManySmallTasks)
{
    auto g = models::mobilenetV2(1);
    auto tasks = partition(g);
    EXPECT_GE(tasks.size(), 20u);
    // MobileNet-v2 is ~0.6 GFLOPs: far smaller than ResNet-50.
    EXPECT_LT(g.totalFlops(), models::resnet50(1).totalFlops() / 4.0);
}

TEST(Models, R3dIsDominatedByConv3d)
{
    auto g = models::r3d18(1);
    auto tasks = partition(g);
    double conv3dFlops = 0.0, totalFlops = 0.0;
    for (const auto &task : tasks) {
        double f = task.weight * task.subgraph.totalFlops();
        totalFlops += f;
        if (task.anchorType == OpType::Conv3d)
            conv3dFlops += f;
    }
    // Paper: 3d convolutions make up more than 99% of computation.
    EXPECT_GT(conv3dFlops / totalFlops, 0.99);
}

TEST(Models, DcganIsAllTransposedConvs)
{
    auto g = models::dcgan(1);
    auto tasks = partition(g);
    int tconvTasks = 0;
    for (const auto &task : tasks)
        tconvTasks += (task.anchorType == OpType::TConv2d);
    EXPECT_GE(tconvTasks, 4);
}

TEST(Models, VitHasAttentionOps)
{
    auto g = models::vitB32(1);
    auto tasks = partition(g);
    bool hasBmm = false, hasSoftmax = false, hasLayerNorm = false,
         hasDense = false;
    for (const auto &task : tasks) {
        hasBmm |= task.anchorType == OpType::BatchMatmul;
        hasSoftmax |= task.anchorType == OpType::Softmax;
        hasLayerNorm |= task.anchorType == OpType::LayerNorm;
        hasDense |= task.anchorType == OpType::Dense;
    }
    EXPECT_TRUE(hasBmm);
    EXPECT_TRUE(hasSoftmax);
    EXPECT_TRUE(hasLayerNorm);
    EXPECT_TRUE(hasDense);
    // 12 identical encoder layers deduplicate heavily.
    EXPECT_LE(tasks.size(), 20u);
}

TEST(Models, LlamaIsLargeAndDense)
{
    auto g = models::llama(1, 100);
    auto tasks = partition(g);
    // Prefill of 100 tokens through a 7B model: ~1.3 TFLOPs.
    EXPECT_GT(g.totalFlops() / 1e12, 0.8);
    // Dense projections dominate.
    double denseFlops = 0.0, totalFlops = 0.0;
    for (const auto &task : tasks) {
        double f = task.weight * task.subgraph.totalFlops();
        totalFlops += f;
        if (task.anchorType == OpType::Dense)
            denseFlops += f;
    }
    EXPECT_GT(denseFlops / totalFlops, 0.9);
}

TEST(Models, VitDeduplicatesTwelveEncoderLayers)
{
    auto tasks = partition(models::vitB32(1));
    // Every per-layer projection task carries weight 12 (or 24 for
    // the two same-shaped MLP matmuls per layer).
    bool foundWeight12 = false;
    for (const auto &task : tasks)
        foundWeight12 |= (task.weight % 12 == 0 && task.weight > 0 &&
                          task.anchorType == OpType::Dense);
    EXPECT_TRUE(foundWeight12);
}

TEST(Models, PartitionConservesComputeFlops)
{
    // The weighted task FLOPs must cover the graph's compute nodes
    // (elementwise epilogues may add a small epsilon on top).
    auto g = models::resnet50(1);
    auto tasks = partition(g);
    double taskFlops = 0.0;
    for (const auto &task : tasks)
        taskFlops += task.weight * task.subgraph.totalFlops();
    EXPECT_GT(taskFlops, g.totalFlops() * 0.98);
    EXPECT_LT(taskFlops, g.totalFlops() * 1.10);
}

TEST(Names, EnumPrintersCoverAllValues)
{
    for (OpType type :
         {OpType::Conv2d, OpType::Conv3d, OpType::TConv2d,
          OpType::Dense, OpType::BatchMatmul, OpType::Softmax,
          OpType::MaxPool2d, OpType::GlobalAvgPool, OpType::LayerNorm,
          OpType::BiasAdd, OpType::BatchNorm, OpType::Relu,
          OpType::Sigmoid, OpType::Tanh, OpType::Gelu, OpType::Add,
          OpType::Elementwise}) {
        EXPECT_STRNE(opTypeName(type), "?");
    }
}

TEST(Models, BatchSizeScalesFlops)
{
    double flops1 = models::resnet50(1).totalFlops();
    double flops16 = models::resnet50(16).totalFlops();
    EXPECT_NEAR(flops16 / flops1, 16.0, 0.1);
}

TEST(Models, EvaluationSetMatchesPaper)
{
    auto specs = models::evaluationNetworks();
    ASSERT_EQ(specs.size(), 6u);
    EXPECT_EQ(specs[0].name, "ResNet-50");
    EXPECT_EQ(specs[5].name, "LLaMA");
    EXPECT_FALSE(specs[5].runsOnXavier);
    EXPECT_FALSE(specs[5].runsAtBatch16);
}

} // namespace
} // namespace graph
} // namespace felix
