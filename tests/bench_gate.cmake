# Bench-regression gate (ctest, opt-in via -DFELIX_BENCH_GATE=ON,
# label "bench-gate"): run the real bench_tape / bench_serve suites
# with --json-out and diff them against the committed BENCH_*.json
# baselines with felix-bench-diff (docs/serving.md "Bench gate").
#
# The threshold defaults to 0.5 (fail only when >50% worse than the
# committed numbers) because microbenchmark noise on shared CI boxes
# routinely reaches tens of percent; the gate exists to catch
# order-of-magnitude regressions (a scalar fallback silently
# replacing a SIMD path, an accidental O(n^2) loop), not 5% drift.
# Baselines are refreshed by committing a fresh --json-out run from
# the same machine class (EXPERIMENTS.md records the provenance).
#
# With -DSTRICT_NEW=ON the diff also fails when the fresh run has a
# benchmark the committed baseline lacks — i.e. the baseline must be
# re-committed whenever a benchmark series is added, so it always
# enumerates every series (EXPERIMENTS.md "Bench gate").
#
# Invoked as
#   cmake -DBENCH_BIN=... -DBENCH_NAME=tape -DBENCH_DIFF=...
#         -DBASELINE=... -DWORK_DIR=... [-DTHRESHOLD=0.5]
#         [-DSTRICT_NEW=ON] -P bench_gate.cmake

foreach(var BENCH_BIN BENCH_NAME BENCH_DIFF BASELINE WORK_DIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "bench_gate: missing -D${var}")
    endif()
endforeach()
if(NOT DEFINED THRESHOLD)
    set(THRESHOLD 0.5)
endif()
set(strict_new_flag "")
if(STRICT_NEW)
    set(strict_new_flag "--strict-new")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(current "${WORK_DIR}/bench_${BENCH_NAME}.json")

execute_process(
    COMMAND "${BENCH_BIN}" "--json-out=${current}"
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
        "bench_${BENCH_NAME} failed (${rc}):\n${out}\n${err}")
endif()
if(NOT EXISTS "${current}")
    message(FATAL_ERROR
        "bench_${BENCH_NAME} wrote no ${current}")
endif()

execute_process(
    COMMAND "${BENCH_DIFF}"
        --baseline "${BASELINE}" --current "${current}"
        --threshold "${THRESHOLD}" ${strict_new_flag}
    OUTPUT_VARIABLE diff_out
    ERROR_VARIABLE diff_err
    RESULT_VARIABLE diff_rc)
message(STATUS "felix-bench-diff:\n${diff_out}")
if(NOT diff_rc EQUAL 0)
    message(FATAL_ERROR
        "bench gate failed for ${BENCH_NAME} (exit ${diff_rc}): "
        "fresh run regressed past ${THRESHOLD} vs ${BASELINE}\n"
        "${diff_err}")
endif()

message(STATUS "bench gate OK: ${BENCH_NAME} within threshold "
    "${THRESHOLD} of ${BASELINE}")
