/**
 * @file
 * Tests for the simulated GPU devices and the analytical latency
 * model: monotonicity and structure properties the search relies on.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "expr/compiled.h"
#include "features/features.h"
#include "sim/device.h"
#include "sim/gpu_model.h"
#include "sketch/sampling.h"
#include "sketch/sketch.h"
#include "support/logging.h"
#include "tir/ops.h"

namespace felix {
namespace sim {
namespace {

std::vector<double>
denseFeatures(const std::vector<std::pair<std::string, double>> &sets,
              int64_t n = 512, int64_t m = 512, int64_t k = 512)
{
    auto subgraph = tir::dense(n, m, k, false);
    auto sketches = sketch::generateSketches(subgraph);
    const auto &full = sketches[0];
    std::vector<double> x(full.vars.size(), 1.0);
    for (const auto &[name, value] : sets)
        x[full.varIndex(name)] = value;
    std::vector<std::string> names;
    for (const auto &domain : full.vars)
        names.push_back(domain.name);
    return features::concreteFeatures(full.program, names, x);
}

TEST(Device, ConfigsMatchPublishedSpecs)
{
    const DeviceConfig &a10g = deviceConfig(DeviceKind::A10G);
    EXPECT_EQ(a10g.smCount, 80);
    // ~35 TFLOPS FP32.
    EXPECT_NEAR(a10g.peakFlops() / 1e12, 35.0, 1.5);

    const DeviceConfig &a5000 = deviceConfig(DeviceKind::A5000);
    EXPECT_EQ(a5000.smCount * a5000.coresPerSm, 8192);   // paper §6.1

    const DeviceConfig &xavier = deviceConfig(DeviceKind::XavierNX);
    EXPECT_EQ(xavier.smCount * xavier.coresPerSm, 384);
    EXPECT_LT(xavier.peakFlops(), a10g.peakFlops() / 10.0);
}

TEST(Device, ParseNames)
{
    EXPECT_EQ(parseDevice("a10g"), DeviceKind::A10G);
    EXPECT_EQ(parseDevice("A5000"), DeviceKind::A5000);
    EXPECT_EQ(parseDevice("xavier-nx"), DeviceKind::XavierNX);
    EXPECT_THROW(parseDevice("h100"), FatalError);
}

TEST(Model, LatencyPositiveAndFinite)
{
    auto f = denseFeatures({});
    for (DeviceKind kind : allDevices()) {
        double latency = kernelLatency(f, deviceConfig(kind));
        EXPECT_TRUE(std::isfinite(latency));
        EXPECT_GT(latency, 0.0);
    }
}

TEST(Model, LaunchOverheadIsAFloor)
{
    // A tiny elementwise kernel cannot run faster than the launch
    // overhead.
    tir::ArithCounts arith;
    arith.add = 1;
    auto subgraph = tir::elementwise(1024, 1, arith);
    auto sketches = sketch::generateSketches(subgraph);
    std::vector<std::string> names;
    for (const auto &domain : sketches[0].vars)
        names.push_back(domain.name);
    std::vector<double> x(names.size(), 1.0);
    x[sketches[0].varIndex("e_th")] = 256.0;
    auto f = features::concreteFeatures(sketches[0].program, names, x);
    const DeviceConfig &device = deviceConfig(DeviceKind::A5000);
    EXPECT_GE(kernelLatency(f, device),
              device.launchOverheadUs * 1e-6);
    EXPECT_LT(kernelLatency(f, device),
              5.0 * device.launchOverheadUs * 1e-6);
}

TEST(Model, ThreadParallelismSpeedsUpLargeKernels)
{
    auto fOneThread = denseFeatures({});
    auto fManyThreads = denseFeatures(
        {{"sp0_th", 16.0}, {"sp1_th", 16.0}});
    const DeviceConfig &device = deviceConfig(DeviceKind::A5000);
    EXPECT_GT(kernelLatency(fOneThread, device),
              5.0 * kernelLatency(fManyThreads, device));
}

TEST(Model, LargerBlockTilesReduceMemoryTime)
{
    // A block covering a larger output tile refetches less of A and
    // B overall (classic matmul blocking trade-off). Matrices are
    // sized above L2 so refetches actually hit DRAM.
    auto base = denseFeatures({{"sp0_th", 16.0}, {"sp1_th", 16.0}},
                              2048, 2048, 2048);
    auto tiled = denseFeatures({{"sp0_th", 16.0},
                                {"sp1_th", 16.0},
                                {"sp0_in", 4.0},
                                {"sp1_in", 4.0}},
                               2048, 2048, 2048);
    const DeviceConfig &device = deviceConfig(DeviceKind::A5000);
    auto baseDetail = kernelLatencyDetail(base, device);
    auto tiledDetail = kernelLatencyDetail(tiled, device);
    EXPECT_LT(tiledDetail.memorySec, baseDetail.memorySec);
}

TEST(Model, UnrollingImprovesComputeBoundKernels)
{
    auto plain = denseFeatures({{"sp0_th", 16.0},
                                {"sp1_th", 16.0},
                                {"r0_in", 16.0}});
    auto unrolled = denseFeatures({{"sp0_th", 16.0},
                                   {"sp1_th", 16.0},
                                   {"r0_in", 16.0},
                                   {"UNROLL", 64.0}});
    const DeviceConfig &device = deviceConfig(DeviceKind::A5000);
    EXPECT_LT(kernelLatency(unrolled, device),
              kernelLatency(plain, device));
}

TEST(Model, EdgeDeviceIsSlower)
{
    auto f = denseFeatures({{"sp0_th", 16.0}, {"sp1_th", 16.0},
                            {"r0_in", 16.0}});
    double a10g = kernelLatency(f, deviceConfig(DeviceKind::A10G));
    double xavier =
        kernelLatency(f, deviceConfig(DeviceKind::XavierNX));
    EXPECT_GT(xavier, 5.0 * a10g);
}

TEST(Model, OccupancyReportedInBreakdown)
{
    auto f = denseFeatures({{"sp0_th", 16.0}, {"sp1_th", 16.0}});
    auto detail =
        kernelLatencyDetail(f, deviceConfig(DeviceKind::A5000));
    EXPECT_GT(detail.occupancy, 0.0);
    EXPECT_LE(detail.occupancy, 1.0);
    EXPECT_GT(detail.warpEfficiency, 0.0);
    EXPECT_LE(detail.warpEfficiency, 1.0);
    EXPECT_GT(detail.waveEfficiency, 0.0);
    EXPECT_LE(detail.waveEfficiency, 1.0);
}

TEST(Model, PartialWarpsArePenalized)
{
    // 48 threads = 1.5 warps: warp efficiency 0.75.
    auto f48 = denseFeatures({{"sp0_th", 4.0}, {"sp1_th", 4.0}});
    auto detail =
        kernelLatencyDetail(f48, deviceConfig(DeviceKind::A5000));
    EXPECT_LT(detail.warpEfficiency, 0.75);
}

TEST(Measure, DeterministicGivenSeed)
{
    auto f = denseFeatures({{"sp0_th", 8.0}});
    const DeviceConfig &device = deviceConfig(DeviceKind::A5000);
    EXPECT_DOUBLE_EQ(measureKernel(f, device, 7),
                     measureKernel(f, device, 7));
    EXPECT_NE(measureKernel(f, device, 7),
              measureKernel(f, device, 8));
}

TEST(Measure, NoiseIsSmall)
{
    auto f = denseFeatures({{"sp0_th", 8.0}, {"sp1_th", 8.0}});
    const DeviceConfig &device = deviceConfig(DeviceKind::A5000);
    double base = kernelLatency(f, device);
    for (uint64_t seed = 0; seed < 16; ++seed) {
        double measured = measureKernel(f, device, seed);
        EXPECT_NEAR(measured / base, 1.0, 0.25);
    }
}

TEST(Model, BreakdownTotalCoversComponents)
{
    auto f = denseFeatures({{"sp0_th", 16.0}, {"sp1_th", 16.0}});
    auto detail =
        kernelLatencyDetail(f, deviceConfig(DeviceKind::A5000));
    // The p-norm body is at least the largest single component, and
    // the total adds sync + launch on top.
    double maxComponent = std::max(
        {detail.computeSec, detail.memorySec, detail.sharedSec});
    EXPECT_GE(detail.totalSec,
              maxComponent + detail.launchSec - 1e-15);
    EXPECT_DOUBLE_EQ(
        kernelLatency(f, deviceConfig(DeviceKind::A5000)),
        detail.totalSec);
}

TEST(Measure, IntrinsicJitterDiffersAcrossDevices)
{
    auto f = denseFeatures({{"sp0_th", 8.0}});
    double a = measureKernel(f, deviceConfig(DeviceKind::A5000), 1) /
               kernelLatency(f, deviceConfig(DeviceKind::A5000));
    double b = measureKernel(f, deviceConfig(DeviceKind::A10G), 1) /
               kernelLatency(f, deviceConfig(DeviceKind::A10G));
    // Same schedule, different device: different code generation
    // luck, hence a different multiplicative perturbation.
    EXPECT_NE(a, b);
}

/** The search space has room: tuned beats naive by a wide margin. */
TEST(Model, TunedScheduleBeatsNaiveByOrderOfMagnitude)
{
    auto naive = denseFeatures({});
    auto tuned = denseFeatures({{"sp0_vt", 2.0},
                                {"sp0_th", 16.0},
                                {"sp0_in", 4.0},
                                {"sp1_th", 16.0},
                                {"sp1_in", 4.0},
                                {"r0_in", 16.0},
                                {"UNROLL", 64.0}});
    const DeviceConfig &device = deviceConfig(DeviceKind::A5000);
    EXPECT_GT(kernelLatency(naive, device),
              10.0 * kernelLatency(tuned, device));
}

} // namespace
} // namespace sim
} // namespace felix
