/**
 * @file
 * Unit tests for the support substrate: RNG determinism and
 * distributions, math helpers, string/table formatting, logging.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "support/logging.h"
#include "support/math_util.h"
#include "support/rng.h"
#include "support/string_util.h"

namespace felix {
namespace {

TEST(Rng, DeterministicStream)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 4);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformIntCoversRangeInclusive)
{
    Rng rng(3);
    std::set<int64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        int64_t v = rng.uniformInt(2, 5);
        EXPECT_GE(v, 2);
        EXPECT_LE(v, 5);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, NormalMomentsRoughlyStandard)
{
    Rng rng(11);
    std::vector<double> xs;
    for (int i = 0; i < 20000; ++i)
        xs.push_back(rng.normal());
    EXPECT_NEAR(mean(xs), 0.0, 0.05);
    EXPECT_NEAR(stddev(xs), 1.0, 0.05);
}

TEST(Rng, WeightedIndexFollowsWeights)
{
    Rng rng(5);
    std::vector<double> weights = {1.0, 0.0, 3.0};
    int counts[3] = {0, 0, 0};
    for (int i = 0; i < 4000; ++i)
        counts[rng.weightedIndex(weights)]++;
    EXPECT_EQ(counts[1], 0);
    EXPECT_GT(counts[2], counts[0] * 2);
}

TEST(Rng, ForkIsIndependent)
{
    Rng parent(9);
    Rng child = parent.fork();
    // The child stream must differ from the parent's continuation.
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (parent.next() == child.next());
    EXPECT_LT(same, 4);
}

TEST(Rng, ForkWithKeyIsDeterministicAndKeyed)
{
    Rng a(9), b(9);
    Rng childA = a.fork(3);
    Rng childB = b.fork(3);
    // Same parent state + same key => same child stream.
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(childA.next(), childB.next());
    // Different keys from the same parent state => different streams.
    Rng c(9), d(9);
    Rng childC = c.fork(3);
    Rng childD = d.fork(4);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (childC.next() == childD.next());
    EXPECT_LT(same, 4);
}

TEST(Rng, ForkStreamsAreMutuallyIndependent)
{
    Rng parent(21);
    auto streams = parent.forkStreams(4);
    ASSERT_EQ(streams.size(), 4u);
    for (size_t a = 0; a < streams.size(); ++a) {
        for (size_t b = a + 1; b < streams.size(); ++b) {
            Rng x = streams[a], y = streams[b];
            int same = 0;
            for (int i = 0; i < 64; ++i)
                same += (x.next() == y.next());
            EXPECT_LT(same, 4) << "streams " << a << " and " << b;
        }
    }
}

TEST(Rng, ForkStreamsAdvanceParentIndependentlyOfCount)
{
    // The parallel determinism contract (docs/parallelism.md): the
    // parent stream consumes exactly one draw regardless of how many
    // children are forked, so downstream randomness does not depend
    // on the parallel fan-out width.
    Rng a(5), b(5);
    (void)a.forkStreams(3);
    (void)b.forkStreams(17);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, ForkStreamsMatchRepeatedRuns)
{
    Rng a(31), b(31);
    auto sa = a.forkStreams(5);
    auto sb = b.forkStreams(5);
    for (size_t s = 0; s < sa.size(); ++s)
        for (int i = 0; i < 16; ++i)
            EXPECT_EQ(sa[s].next(), sb[s].next());
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(13);
    std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
    auto original = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, original);
}

TEST(MathUtil, DivisorsOfTwelve)
{
    EXPECT_EQ(divisorsOf(12),
              (std::vector<int64_t>{1, 2, 3, 4, 6, 12}));
}

TEST(MathUtil, DivisorsOfPrime)
{
    EXPECT_EQ(divisorsOf(13), (std::vector<int64_t>{1, 13}));
}

TEST(MathUtil, DivisorsOfOne)
{
    EXPECT_EQ(divisorsOf(1), (std::vector<int64_t>{1}));
}

TEST(MathUtil, NearestDivisorLogSnapsInLogSpace)
{
    // For N = 64, x = 5.6: candidates 4 and 8; log-space midpoint is
    // sqrt(32) ~ 5.66, so 5.6 snaps to 4.
    EXPECT_EQ(nearestDivisorLog(64, 5.6), 4);
    EXPECT_EQ(nearestDivisorLog(64, 5.7), 8);
}

TEST(MathUtil, NearestDivisorLogClamps)
{
    EXPECT_EQ(nearestDivisorLog(36, 0.01), 1);
    EXPECT_EQ(nearestDivisorLog(36, 1e9), 36);
}

TEST(MathUtil, NearestDivisorExactHit)
{
    EXPECT_EQ(nearestDivisorLog(100, 25.0), 25);
}

TEST(MathUtil, ClampRound)
{
    EXPECT_EQ(clampRound(3.4, 1, 10), 3);
    EXPECT_EQ(clampRound(3.6, 1, 10), 4);
    EXPECT_EQ(clampRound(-5.0, 1, 10), 1);
    EXPECT_EQ(clampRound(99.0, 1, 10), 10);
}

TEST(MathUtil, GeomeanOfPowers)
{
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(MathUtil, CeilDivAndRoundUp)
{
    EXPECT_EQ(ceilDiv(10, 3), 4);
    EXPECT_EQ(ceilDiv(9, 3), 3);
    EXPECT_EQ(roundUp(10, 4), 12);
    EXPECT_EQ(roundUp(8, 4), 8);
}

TEST(MathUtil, IsPowerOfTwo)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(64));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(12));
}

TEST(StringUtil, JoinAndPad)
{
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ","), "");
    EXPECT_EQ(padLeft("x", 3), "  x");
    EXPECT_EQ(padRight("x", 3), "x  ");
}

TEST(StringUtil, Strformat)
{
    EXPECT_EQ(strformat("%.2fx", 1.5), "1.50x");
    EXPECT_EQ(strformat("%d-%s", 3, "ok"), "3-ok");
}

TEST(StringUtil, RenderTableAligns)
{
    std::string table = renderTable({{"name", "value"},
                                     {"alpha", "1"},
                                     {"b", "22"}});
    EXPECT_NE(table.find("name   value"), std::string::npos);
    EXPECT_NE(table.find("alpha  1"), std::string::npos);
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad input"), FatalError);
}

TEST(Logging, PanicThrowsInternalError)
{
    EXPECT_THROW(panic("bug"), InternalError);
}

TEST(Logging, CheckMacroPassesAndFails)
{
    EXPECT_NO_THROW(FELIX_CHECK(1 + 1 == 2));
    EXPECT_THROW(FELIX_CHECK(false, "context"), InternalError);
}

TEST(Support, HashCombineIsDeterministic)
{
    EXPECT_EQ(hashCombine(1, 2), hashCombine(1, 2));
    EXPECT_NE(hashCombine(1, 2), hashCombine(2, 1));
}

} // namespace
} // namespace felix
