/**
 * @file
 * Telemetry subsystem tests: metrics registry semantics (counter /
 * gauge / histogram, concurrent increments), Chrome-trace export
 * (well-formed JSON, balanced and properly nested spans), the JSON
 * parser itself, and the per-round JSONL record schema.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <thread>
#include <vector>

#include <unistd.h>

#include "obs/flight.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/round_log.h"
#include "obs/trace.h"
#include "obs/window.h"

namespace felix {
namespace obs {
namespace {

TEST(Metrics, CounterAccumulates)
{
    Counter counter;
    EXPECT_DOUBLE_EQ(counter.value(), 0.0);
    counter.add();
    counter.add(2.5);
    EXPECT_DOUBLE_EQ(counter.value(), 3.5);
    counter.reset();
    EXPECT_DOUBLE_EQ(counter.value(), 0.0);
}

TEST(Metrics, GaugeKeepsLastValue)
{
    Gauge gauge;
    gauge.set(4.0);
    gauge.set(-1.5);
    EXPECT_DOUBLE_EQ(gauge.value(), -1.5);
}

TEST(Metrics, HistogramBucketsAndMean)
{
    Histogram histogram({1.0, 10.0, 100.0});
    histogram.observe(0.5);     // <= 1
    histogram.observe(1.0);     // <= 1 (bound is inclusive)
    histogram.observe(5.0);     // <= 10
    histogram.observe(1000.0);  // overflow
    auto counts = histogram.counts();
    ASSERT_EQ(counts.size(), 4u);
    EXPECT_EQ(counts[0], 2u);
    EXPECT_EQ(counts[1], 1u);
    EXPECT_EQ(counts[2], 0u);
    EXPECT_EQ(counts[3], 1u);
    EXPECT_EQ(histogram.count(), 4u);
    EXPECT_DOUBLE_EQ(histogram.sum(), 1006.5);
    EXPECT_DOUBLE_EQ(histogram.mean(), 1006.5 / 4.0);
}

TEST(Metrics, LogBoundsCoverRangeWithFixedRatio)
{
    auto bounds = Histogram::logBounds(0.1, 1e5, 9);
    ASSERT_GE(bounds.size(), 2u);
    EXPECT_DOUBLE_EQ(bounds.front(), 0.1);
    EXPECT_GE(bounds.back(), 1e5);
    const double ratio = std::pow(10.0, 1.0 / 9.0);
    for (size_t i = 1; i < bounds.size(); ++i) {
        EXPECT_GT(bounds[i], bounds[i - 1]);
        EXPECT_NEAR(bounds[i] / bounds[i - 1], ratio, 1e-9);
    }
}

/**
 * est must be within the documented bucket-ratio error bound of the
 * true empirical quantile.
 */
void
expectQuantileWithinBound(const Histogram &histogram,
                          std::vector<double> values, double q,
                          double ratio)
{
    std::sort(values.begin(), values.end());
    // Same rank convention as bucketQuantile: the estimate lands in
    // the bucket holding the ceil(q*n)-th observation.
    const double target = q * static_cast<double>(values.size());
    size_t index =
        target <= 0.0
            ? 0
            : static_cast<size_t>(std::ceil(target)) - 1;
    index = std::min(index, values.size() - 1);
    const double truth = values[index];
    const double est = histogram.quantile(q);
    EXPECT_LE(est, truth * ratio * 1.0001)
        << "q=" << q << " truth=" << truth;
    EXPECT_GE(est, truth / ratio / 1.0001)
        << "q=" << q << " truth=" << truth;
}

TEST(Metrics, QuantileErrorBoundOnAdversarialStreams)
{
    const double ratio = std::pow(10.0, 1.0 / 9.0);
    auto bounds = Histogram::logBounds(1.0, 1e6, 9);

    // Point mass: every observation identical, landing mid-bucket.
    {
        Histogram histogram(bounds);
        std::vector<double> values(1000, 137.0);
        for (double v : values)
            histogram.observe(v);
        for (double q : {0.0, 0.5, 0.95, 0.99, 1.0})
            expectQuantileWithinBound(histogram, values, q, ratio);
    }
    // Bimodal with four decades between the modes: the p50/p95
    // split straddles the gap.
    {
        Histogram histogram(bounds);
        std::vector<double> values;
        for (int i = 0; i < 900; ++i)
            values.push_back(42.0);
        for (int i = 0; i < 100; ++i)
            values.push_back(3.7e5);
        for (double v : values)
            histogram.observe(v);
        for (double q : {0.5, 0.89, 0.91, 0.99})
            expectQuantileWithinBound(histogram, values, q, ratio);
    }
    // Geometric sweep hitting every bucket, worst case for the
    // interpolation.
    {
        Histogram histogram(bounds);
        std::vector<double> values;
        for (double v = 1.05; v < 9e5; v *= 1.17)
            values.push_back(v);
        for (double v : values)
            histogram.observe(v);
        for (double q : {0.05, 0.25, 0.5, 0.75, 0.95})
            expectQuantileWithinBound(histogram, values, q, ratio);
    }
}

TEST(Metrics, QuantileEdgeConventions)
{
    Histogram histogram(Histogram::logBounds(1.0, 100.0, 9));
    EXPECT_DOUBLE_EQ(histogram.quantile(0.5), 0.0);   // empty
    histogram.observe(1e9);                           // overflow
    EXPECT_DOUBLE_EQ(histogram.quantile(0.99),
                     histogram.bounds().back());      // clamps
}

/** Copy a histogram's state into the mergeable snapshot form. */
MetricsSnapshot::HistogramData
dataOf(const Histogram &histogram)
{
    MetricsSnapshot::HistogramData data;
    data.bounds = histogram.bounds();
    data.counts = histogram.counts();
    data.count = histogram.count();
    data.sum = histogram.sum();
    return data;
}

TEST(Metrics, HistogramMergeIsAssociative)
{
    auto bounds = Histogram::logBounds(1.0, 1e4, 9);
    Histogram a(bounds), b(bounds), c(bounds);
    for (double v = 1.5; v < 9e3; v *= 2.0)
        a.observe(v);
    for (double v = 3.0; v < 5e3; v *= 1.7)
        b.observe(v);
    c.observe(2.0);
    c.observe(8e3);

    // (a + b) + c
    auto left = dataOf(a);
    ASSERT_TRUE(left.merge(dataOf(b)));
    ASSERT_TRUE(left.merge(dataOf(c)));
    // a + (b + c)
    auto right = dataOf(b);
    ASSERT_TRUE(right.merge(dataOf(c)));
    auto rightTotal = dataOf(a);
    ASSERT_TRUE(rightTotal.merge(right));

    EXPECT_EQ(left.counts, rightTotal.counts);
    EXPECT_EQ(left.count, rightTotal.count);
    EXPECT_DOUBLE_EQ(left.sum, rightTotal.sum);
    for (double q : {0.25, 0.5, 0.95})
        EXPECT_DOUBLE_EQ(left.quantile(q), rightTotal.quantile(q));

    // The live-histogram merge agrees with the snapshot merge.
    Histogram folded(bounds);
    ASSERT_TRUE(folded.mergeFrom(a));
    ASSERT_TRUE(folded.mergeFrom(b));
    ASSERT_TRUE(folded.mergeFrom(c));
    EXPECT_EQ(dataOf(folded).counts, left.counts);
}

TEST(Metrics, MergeRejectsMismatchedBounds)
{
    Histogram a(Histogram::logBounds(1.0, 100.0, 9));
    Histogram b(Histogram::logBounds(1.0, 100.0, 3));
    a.observe(5.0);
    b.observe(5.0);
    EXPECT_FALSE(a.mergeFrom(b));
    EXPECT_EQ(a.count(), 1u);   // untouched on failure

    auto dataA = dataOf(a);
    EXPECT_FALSE(dataA.merge(dataOf(b)));
    EXPECT_EQ(dataA.count, 1u);
}

TEST(Metrics, SnapshotJsonCarriesQuantiles)
{
    auto &registry = MetricsRegistry::instance();
    Histogram &histogram = registry.histogram(
        "test_obs.quantile_histo",
        Histogram::logBounds(1.0, 1e4, 9));
    histogram.reset();
    for (int i = 1; i <= 100; ++i)
        histogram.observe(static_cast<double>(i));

    auto parsed = parseJson(registry.snapshot().toJson());
    ASSERT_TRUE(parsed.has_value());
    const JsonValue *histos = parsed->find("histograms");
    ASSERT_NE(histos, nullptr);
    const JsonValue *histo =
        histos->find("test_obs.quantile_histo");
    ASSERT_NE(histo, nullptr);
    EXPECT_DOUBLE_EQ(histo->numberOr("count", 0.0), 100.0);
    const double p50 = histo->numberOr("p50", 0.0);
    const double p95 = histo->numberOr("p95", 0.0);
    const double p99 = histo->numberOr("p99", 0.0);
    EXPECT_GT(p50, 0.0);
    EXPECT_LE(p50, p95);
    EXPECT_LE(p95, p99);
    EXPECT_NEAR(histo->numberOr("mean", 0.0), 50.5, 1e-9);
}

TEST(Window, SlidingRateEvictsOldestOnWrap)
{
    SlidingWindowRate window(4);
    EXPECT_DOUBLE_EQ(window.rate(), 0.0);
    window.observe(true);
    window.observe(true);
    EXPECT_EQ(window.occupied(), 2u);
    EXPECT_DOUBLE_EQ(window.rate(), 1.0);
    window.observe(false);
    window.observe(false);
    EXPECT_DOUBLE_EQ(window.rate(), 0.5);
    // Wrap: the two early hits fall out one by one.
    window.observe(false);
    EXPECT_DOUBLE_EQ(window.rate(), 0.25);
    window.observe(false);
    EXPECT_DOUBLE_EQ(window.rate(), 0.0);
    EXPECT_EQ(window.occupied(), 4u);
    window.observe(true);
    EXPECT_EQ(window.successes(), 1u);
    window.reset();
    EXPECT_EQ(window.occupied(), 0u);
    EXPECT_DOUBLE_EQ(window.rate(), 0.0);
}

TEST(Window, EventRateAgesOutWithFakeClock)
{
    EventRateWindow window(1000000, 10);   // 1s in 100ms buckets
    for (int i = 0; i < 5; ++i)
        window.record(i * 100000);
    EXPECT_DOUBLE_EQ(window.ratePerSec(400000), 5.0);
    // A silent second later every bucket is stale.
    EXPECT_DOUBLE_EQ(window.ratePerSec(2000000), 0.0);
    window.record(2000000);
    EXPECT_DOUBLE_EQ(window.ratePerSec(2000000), 1.0);
}

TEST(Flight, RingWrapsKeepingMostRecent)
{
    FlightRecorder recorder(8);
    for (int i = 0; i < 20; ++i) {
        recorder.record(FlightKind::CacheHit,
                        static_cast<uint64_t>(i),
                        static_cast<uint64_t>(100 + i), i);
    }
    EXPECT_EQ(recorder.totalRecorded(), 20u);
    EXPECT_EQ(recorder.dropped(), 12u);
    auto events = recorder.snapshot();
    ASSERT_EQ(events.size(), 8u);
    for (size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].seq, 12u + i);   // oldest first
        EXPECT_EQ(events[i].requestId, 12u + i);
        EXPECT_EQ(events[i].key, 112u + i);
    }
    recorder.reset(4);
    EXPECT_EQ(recorder.totalRecorded(), 0u);
    EXPECT_EQ(recorder.capacity(), 4u);
}

TEST(Flight, DumpToWritesOneLinePerEvent)
{
    FlightRecorder recorder(4);
    recorder.record(FlightKind::Request, 7, 2);
    recorder.record(FlightKind::Shutdown, 0, 0, -3);

    FILE *sink = std::tmpfile();
    ASSERT_NE(sink, nullptr);
    EXPECT_EQ(recorder.dumpTo(fileno(sink)), 2u);
    std::fflush(sink);
    std::rewind(sink);
    char buffer[1024] = {};
    size_t n = std::fread(buffer, 1, sizeof(buffer) - 1, sink);
    std::fclose(sink);
    std::string text(buffer, n);
    EXPECT_NE(text.find("flight seq=0"), std::string::npos);
    EXPECT_NE(text.find("kind=request"), std::string::npos);
    EXPECT_NE(text.find("req=7"), std::string::npos);
    EXPECT_NE(text.find("kind=shutdown"), std::string::npos);
    EXPECT_NE(text.find("value=-3"), std::string::npos);
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
}

TEST(Trace, SpansCarryRequestCorrelationIds)
{
    Tracer &tracer = Tracer::instance();
    tracer.start("");
    EXPECT_EQ(currentRequestId(), 0u);
    {
        ScopedRequestId requestId(42);
        EXPECT_EQ(currentRequestId(), 42u);
        FELIX_SPAN("test_obs.with_req", "test");
    }
    EXPECT_EQ(currentRequestId(), 0u);
    {
        FELIX_SPAN("test_obs.without_req", "test");
    }
    auto parsed = parseJson(tracer.toJson());
    tracer.stop();
    tracer.clear();
    ASSERT_TRUE(parsed.has_value());
    const JsonValue *events = parsed->find("traceEvents");
    ASSERT_NE(events, nullptr);
    bool sawTagged = false, sawUntagged = false;
    for (const JsonValue &event : events->asArray()) {
        const std::string name = event.stringOr("name", "");
        const JsonValue *args = event.find("args");
        if (name == "test_obs.with_req") {
            ASSERT_NE(args, nullptr);
            EXPECT_EQ(args->stringOr("req", ""), "42");
            sawTagged = true;
        } else if (name == "test_obs.without_req") {
            EXPECT_EQ(args, nullptr);   // id 0 is omitted
            sawUntagged = true;
        }
    }
    EXPECT_TRUE(sawTagged);
    EXPECT_TRUE(sawUntagged);
}

TEST(Metrics, RegistryReturnsStableHandles)
{
    auto &registry = MetricsRegistry::instance();
    Counter &a = registry.counter("test_obs.handle");
    Counter &b = registry.counter("test_obs.handle");
    EXPECT_EQ(&a, &b);
    a.reset();
    b.add(2.0);
    EXPECT_DOUBLE_EQ(a.value(), 2.0);

    // Same name, different kinds: independent metrics.
    Gauge &g = registry.gauge("test_obs.handle");
    g.set(7.0);
    EXPECT_DOUBLE_EQ(a.value(), 2.0);
    EXPECT_DOUBLE_EQ(g.value(), 7.0);
}

TEST(Metrics, ConcurrentIncrementsDontLoseUpdates)
{
    auto &registry = MetricsRegistry::instance();
    Counter &counter = registry.counter("test_obs.concurrent");
    counter.reset();
    Histogram &histogram =
        registry.histogram("test_obs.concurrent_histo", {0.5});
    histogram.reset();

    constexpr int kThreads = 8;
    constexpr int kIncrements = 2000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < kIncrements; ++i) {
                counter.add(1.0);
                histogram.observe(i % 2 == 0 ? 0.0 : 1.0);
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();

    EXPECT_DOUBLE_EQ(counter.value(),
                     static_cast<double>(kThreads * kIncrements));
    EXPECT_EQ(histogram.count(),
              static_cast<uint64_t>(kThreads * kIncrements));
    auto counts = histogram.counts();
    ASSERT_EQ(counts.size(), 2u);
    EXPECT_EQ(counts[0], counts[1]);
}

TEST(Metrics, SnapshotJsonParses)
{
    auto &registry = MetricsRegistry::instance();
    registry.counter("test_obs.snapshot_counter").add(3.0);
    registry.gauge("test_obs.snapshot_gauge").set(1.25);
    registry.histogram("test_obs.snapshot_histo").observe(12.0);

    std::string json = registry.snapshot().toJson();
    std::string error;
    auto parsed = parseJson(json, &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    const JsonValue *counters = parsed->find("counters");
    ASSERT_NE(counters, nullptr);
    EXPECT_DOUBLE_EQ(
        counters->numberOr("test_obs.snapshot_counter", -1.0), 3.0);
    const JsonValue *histos = parsed->find("histograms");
    ASSERT_NE(histos, nullptr);
    const JsonValue *histo = histos->find("test_obs.snapshot_histo");
    ASSERT_NE(histo, nullptr);
    EXPECT_DOUBLE_EQ(histo->numberOr("count", 0.0), 1.0);
}

TEST(Json, ParsesScalarsAndStructure)
{
    auto v = parseJson(
        " {\"a\": [1, -2.5e2, true, null, \"x\\n\\u0041\"]} ");
    ASSERT_TRUE(v.has_value());
    const JsonValue *a = v->find("a");
    ASSERT_NE(a, nullptr);
    const auto &items = a->asArray();
    ASSERT_EQ(items.size(), 5u);
    EXPECT_DOUBLE_EQ(items[0].asNumber(), 1.0);
    EXPECT_DOUBLE_EQ(items[1].asNumber(), -250.0);
    EXPECT_TRUE(items[2].asBool());
    EXPECT_TRUE(items[3].isNull());
    EXPECT_EQ(items[4].asString(), "x\nA");
}

TEST(Json, RejectsMalformedInput)
{
    EXPECT_FALSE(parseJson("{").has_value());
    EXPECT_FALSE(parseJson("{\"a\":}").has_value());
    EXPECT_FALSE(parseJson("[1,]").has_value());
    EXPECT_FALSE(parseJson("\"unterminated").has_value());
    EXPECT_FALSE(parseJson("{} trailing").has_value());
    std::string error;
    EXPECT_FALSE(parseJson("[1, x]", &error).has_value());
    EXPECT_FALSE(error.empty());
}

TEST(Json, EscapeRoundTrips)
{
    std::string nasty = "a\"b\\c\nd\te\x01f";
    auto parsed = parseJson(jsonEscape(nasty));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->asString(), nasty);
}

TEST(Trace, DisabledSpansRecordNothing)
{
    Tracer &tracer = Tracer::instance();
    tracer.clear();
    ASSERT_FALSE(Tracer::enabled());
    {
        FELIX_SPAN("test_obs.should_not_appear");
    }
    EXPECT_EQ(tracer.eventCount(), 0u);
}

TEST(Trace, ExportIsWellFormedAndSpansBalance)
{
    Tracer &tracer = Tracer::instance();
    tracer.start("");   // collect without a file sink
    {
        FELIX_SPAN("test_obs.outer", "test");
        {
            FELIX_SPAN("test_obs.inner", "test");
        }
        {
            FELIX_SPAN("test_obs.inner", "test");
        }
    }
    std::string json = tracer.toJson();
    tracer.stop();
    tracer.clear();

    std::string error;
    auto parsed = parseJson(json, &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    const JsonValue *events = parsed->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    ASSERT_EQ(events->asArray().size(), 3u);

    // Every span must be a complete event with non-negative
    // duration...
    struct Interval { int64_t start, end; std::string name; };
    std::vector<Interval> intervals;
    for (const JsonValue &event : events->asArray()) {
        EXPECT_EQ(event.stringOr("ph", ""), "X");
        int64_t ts = static_cast<int64_t>(event.numberOr("ts", -1));
        int64_t dur =
            static_cast<int64_t>(event.numberOr("dur", -1));
        EXPECT_GE(ts, 0);
        EXPECT_GE(dur, 0);
        intervals.push_back(
            {ts, ts + dur, event.stringOr("name", "")});
    }
    // ...and intervals must nest (balanced begin/end): any two spans
    // on the single test thread either nest or are disjoint.
    for (size_t i = 0; i < intervals.size(); ++i) {
        for (size_t j = 0; j < intervals.size(); ++j) {
            if (i == j)
                continue;
            const Interval &a = intervals[i];
            const Interval &b = intervals[j];
            bool disjoint = a.end <= b.start || b.end <= a.start;
            bool aInB = a.start >= b.start && a.end <= b.end;
            bool bInA = b.start >= a.start && b.end <= a.end;
            EXPECT_TRUE(disjoint || aInB || bInA)
                << a.name << " vs " << b.name;
        }
    }
    // The outer span must contain both inners.
    auto outer = std::find_if(intervals.begin(), intervals.end(),
                              [](const Interval &iv) {
                                  return iv.name == "test_obs.outer";
                              });
    ASSERT_NE(outer, intervals.end());
    for (const Interval &iv : intervals) {
        if (iv.name == "test_obs.inner") {
            EXPECT_GE(iv.start, outer->start);
            EXPECT_LE(iv.end, outer->end);
        }
    }
}

TEST(Trace, ConcurrentRecordingIsSafe)
{
    Tracer &tracer = Tracer::instance();
    tracer.start("");
    constexpr int kThreads = 4;
    constexpr int kSpans = 500;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([] {
            for (int i = 0; i < kSpans; ++i) {
                FELIX_SPAN("test_obs.mt", "test");
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    EXPECT_EQ(tracer.eventCount(),
              static_cast<size_t>(kThreads * kSpans));
    auto parsed = parseJson(tracer.toJson());
    EXPECT_TRUE(parsed.has_value());
    tracer.stop();
    tracer.clear();
}

TEST(RoundLog, RecordJsonMatchesSchema)
{
    RoundRecord record;
    record.round = 3;
    record.taskLabel = "conv2d \"quoted\"";
    record.taskHash = 12345;
    record.strategy = "Felix";
    record.seedsLaunched = 8;
    record.numPredictions = 1616;
    record.roundingAttempts = 1600;
    record.roundingInvalid = 400;
    record.candidates.push_back({1e-3, 2e-3});
    record.candidates.push_back({5e-4, 4e-4});
    record.finetuneLoss = 0.125;
    record.bestLatencySec = 4e-4;
    record.networkLatencySec = 9e-3;
    record.clockSec = 42.0;
    record.wallMs = 1.5;

    EXPECT_DOUBLE_EQ(record.violationRate(), 0.25);

    auto parsed = parseJson(record.toJson());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->stringOr("type", ""), "round");
    EXPECT_EQ(parsed->stringOr("task", ""), "conv2d \"quoted\"");
    EXPECT_DOUBLE_EQ(parsed->numberOr("seeds", 0), 8.0);
    EXPECT_DOUBLE_EQ(parsed->numberOr("violation_rate", 0), 0.25);
    EXPECT_DOUBLE_EQ(parsed->numberOr("finetune_loss", 0), 0.125);
    const JsonValue *candidates = parsed->find("candidates");
    ASSERT_NE(candidates, nullptr);
    ASSERT_EQ(candidates->asArray().size(), 2u);
    EXPECT_DOUBLE_EQ(candidates->asArray()[0].numberOr(
                         "predicted_sec", 0.0),
                     1e-3);
    EXPECT_DOUBLE_EQ(candidates->asArray()[0].numberOr(
                         "measured_sec", 0.0),
                     2e-3);
}

TEST(RoundLog, EmptyPathDisablesLogger)
{
    RoundLogger logger("");
    EXPECT_FALSE(logger.enabled());
    logger.append(RoundRecord{});   // must be a safe no-op
}

} // namespace
} // namespace obs
} // namespace felix
