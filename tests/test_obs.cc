/**
 * @file
 * Telemetry subsystem tests: metrics registry semantics (counter /
 * gauge / histogram, concurrent increments), Chrome-trace export
 * (well-formed JSON, balanced and properly nested spans), the JSON
 * parser itself, and the per-round JSONL record schema.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/round_log.h"
#include "obs/trace.h"

namespace felix {
namespace obs {
namespace {

TEST(Metrics, CounterAccumulates)
{
    Counter counter;
    EXPECT_DOUBLE_EQ(counter.value(), 0.0);
    counter.add();
    counter.add(2.5);
    EXPECT_DOUBLE_EQ(counter.value(), 3.5);
    counter.reset();
    EXPECT_DOUBLE_EQ(counter.value(), 0.0);
}

TEST(Metrics, GaugeKeepsLastValue)
{
    Gauge gauge;
    gauge.set(4.0);
    gauge.set(-1.5);
    EXPECT_DOUBLE_EQ(gauge.value(), -1.5);
}

TEST(Metrics, HistogramBucketsAndMean)
{
    Histogram histogram({1.0, 10.0, 100.0});
    histogram.observe(0.5);     // <= 1
    histogram.observe(1.0);     // <= 1 (bound is inclusive)
    histogram.observe(5.0);     // <= 10
    histogram.observe(1000.0);  // overflow
    auto counts = histogram.counts();
    ASSERT_EQ(counts.size(), 4u);
    EXPECT_EQ(counts[0], 2u);
    EXPECT_EQ(counts[1], 1u);
    EXPECT_EQ(counts[2], 0u);
    EXPECT_EQ(counts[3], 1u);
    EXPECT_EQ(histogram.count(), 4u);
    EXPECT_DOUBLE_EQ(histogram.sum(), 1006.5);
    EXPECT_DOUBLE_EQ(histogram.mean(), 1006.5 / 4.0);
}

TEST(Metrics, RegistryReturnsStableHandles)
{
    auto &registry = MetricsRegistry::instance();
    Counter &a = registry.counter("test_obs.handle");
    Counter &b = registry.counter("test_obs.handle");
    EXPECT_EQ(&a, &b);
    a.reset();
    b.add(2.0);
    EXPECT_DOUBLE_EQ(a.value(), 2.0);

    // Same name, different kinds: independent metrics.
    Gauge &g = registry.gauge("test_obs.handle");
    g.set(7.0);
    EXPECT_DOUBLE_EQ(a.value(), 2.0);
    EXPECT_DOUBLE_EQ(g.value(), 7.0);
}

TEST(Metrics, ConcurrentIncrementsDontLoseUpdates)
{
    auto &registry = MetricsRegistry::instance();
    Counter &counter = registry.counter("test_obs.concurrent");
    counter.reset();
    Histogram &histogram =
        registry.histogram("test_obs.concurrent_histo", {0.5});
    histogram.reset();

    constexpr int kThreads = 8;
    constexpr int kIncrements = 2000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < kIncrements; ++i) {
                counter.add(1.0);
                histogram.observe(i % 2 == 0 ? 0.0 : 1.0);
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();

    EXPECT_DOUBLE_EQ(counter.value(),
                     static_cast<double>(kThreads * kIncrements));
    EXPECT_EQ(histogram.count(),
              static_cast<uint64_t>(kThreads * kIncrements));
    auto counts = histogram.counts();
    ASSERT_EQ(counts.size(), 2u);
    EXPECT_EQ(counts[0], counts[1]);
}

TEST(Metrics, SnapshotJsonParses)
{
    auto &registry = MetricsRegistry::instance();
    registry.counter("test_obs.snapshot_counter").add(3.0);
    registry.gauge("test_obs.snapshot_gauge").set(1.25);
    registry.histogram("test_obs.snapshot_histo").observe(12.0);

    std::string json = registry.snapshot().toJson();
    std::string error;
    auto parsed = parseJson(json, &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    const JsonValue *counters = parsed->find("counters");
    ASSERT_NE(counters, nullptr);
    EXPECT_DOUBLE_EQ(
        counters->numberOr("test_obs.snapshot_counter", -1.0), 3.0);
    const JsonValue *histos = parsed->find("histograms");
    ASSERT_NE(histos, nullptr);
    const JsonValue *histo = histos->find("test_obs.snapshot_histo");
    ASSERT_NE(histo, nullptr);
    EXPECT_DOUBLE_EQ(histo->numberOr("count", 0.0), 1.0);
}

TEST(Json, ParsesScalarsAndStructure)
{
    auto v = parseJson(
        " {\"a\": [1, -2.5e2, true, null, \"x\\n\\u0041\"]} ");
    ASSERT_TRUE(v.has_value());
    const JsonValue *a = v->find("a");
    ASSERT_NE(a, nullptr);
    const auto &items = a->asArray();
    ASSERT_EQ(items.size(), 5u);
    EXPECT_DOUBLE_EQ(items[0].asNumber(), 1.0);
    EXPECT_DOUBLE_EQ(items[1].asNumber(), -250.0);
    EXPECT_TRUE(items[2].asBool());
    EXPECT_TRUE(items[3].isNull());
    EXPECT_EQ(items[4].asString(), "x\nA");
}

TEST(Json, RejectsMalformedInput)
{
    EXPECT_FALSE(parseJson("{").has_value());
    EXPECT_FALSE(parseJson("{\"a\":}").has_value());
    EXPECT_FALSE(parseJson("[1,]").has_value());
    EXPECT_FALSE(parseJson("\"unterminated").has_value());
    EXPECT_FALSE(parseJson("{} trailing").has_value());
    std::string error;
    EXPECT_FALSE(parseJson("[1, x]", &error).has_value());
    EXPECT_FALSE(error.empty());
}

TEST(Json, EscapeRoundTrips)
{
    std::string nasty = "a\"b\\c\nd\te\x01f";
    auto parsed = parseJson(jsonEscape(nasty));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->asString(), nasty);
}

TEST(Trace, DisabledSpansRecordNothing)
{
    Tracer &tracer = Tracer::instance();
    tracer.clear();
    ASSERT_FALSE(Tracer::enabled());
    {
        FELIX_SPAN("test_obs.should_not_appear");
    }
    EXPECT_EQ(tracer.eventCount(), 0u);
}

TEST(Trace, ExportIsWellFormedAndSpansBalance)
{
    Tracer &tracer = Tracer::instance();
    tracer.start("");   // collect without a file sink
    {
        FELIX_SPAN("test_obs.outer", "test");
        {
            FELIX_SPAN("test_obs.inner", "test");
        }
        {
            FELIX_SPAN("test_obs.inner", "test");
        }
    }
    std::string json = tracer.toJson();
    tracer.stop();
    tracer.clear();

    std::string error;
    auto parsed = parseJson(json, &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    const JsonValue *events = parsed->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    ASSERT_EQ(events->asArray().size(), 3u);

    // Every span must be a complete event with non-negative
    // duration...
    struct Interval { int64_t start, end; std::string name; };
    std::vector<Interval> intervals;
    for (const JsonValue &event : events->asArray()) {
        EXPECT_EQ(event.stringOr("ph", ""), "X");
        int64_t ts = static_cast<int64_t>(event.numberOr("ts", -1));
        int64_t dur =
            static_cast<int64_t>(event.numberOr("dur", -1));
        EXPECT_GE(ts, 0);
        EXPECT_GE(dur, 0);
        intervals.push_back(
            {ts, ts + dur, event.stringOr("name", "")});
    }
    // ...and intervals must nest (balanced begin/end): any two spans
    // on the single test thread either nest or are disjoint.
    for (size_t i = 0; i < intervals.size(); ++i) {
        for (size_t j = 0; j < intervals.size(); ++j) {
            if (i == j)
                continue;
            const Interval &a = intervals[i];
            const Interval &b = intervals[j];
            bool disjoint = a.end <= b.start || b.end <= a.start;
            bool aInB = a.start >= b.start && a.end <= b.end;
            bool bInA = b.start >= a.start && b.end <= a.end;
            EXPECT_TRUE(disjoint || aInB || bInA)
                << a.name << " vs " << b.name;
        }
    }
    // The outer span must contain both inners.
    auto outer = std::find_if(intervals.begin(), intervals.end(),
                              [](const Interval &iv) {
                                  return iv.name == "test_obs.outer";
                              });
    ASSERT_NE(outer, intervals.end());
    for (const Interval &iv : intervals) {
        if (iv.name == "test_obs.inner") {
            EXPECT_GE(iv.start, outer->start);
            EXPECT_LE(iv.end, outer->end);
        }
    }
}

TEST(Trace, ConcurrentRecordingIsSafe)
{
    Tracer &tracer = Tracer::instance();
    tracer.start("");
    constexpr int kThreads = 4;
    constexpr int kSpans = 500;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([] {
            for (int i = 0; i < kSpans; ++i) {
                FELIX_SPAN("test_obs.mt", "test");
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    EXPECT_EQ(tracer.eventCount(),
              static_cast<size_t>(kThreads * kSpans));
    auto parsed = parseJson(tracer.toJson());
    EXPECT_TRUE(parsed.has_value());
    tracer.stop();
    tracer.clear();
}

TEST(RoundLog, RecordJsonMatchesSchema)
{
    RoundRecord record;
    record.round = 3;
    record.taskLabel = "conv2d \"quoted\"";
    record.taskHash = 12345;
    record.strategy = "Felix";
    record.seedsLaunched = 8;
    record.numPredictions = 1616;
    record.roundingAttempts = 1600;
    record.roundingInvalid = 400;
    record.candidates.push_back({1e-3, 2e-3});
    record.candidates.push_back({5e-4, 4e-4});
    record.finetuneLoss = 0.125;
    record.bestLatencySec = 4e-4;
    record.networkLatencySec = 9e-3;
    record.clockSec = 42.0;
    record.wallMs = 1.5;

    EXPECT_DOUBLE_EQ(record.violationRate(), 0.25);

    auto parsed = parseJson(record.toJson());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->stringOr("type", ""), "round");
    EXPECT_EQ(parsed->stringOr("task", ""), "conv2d \"quoted\"");
    EXPECT_DOUBLE_EQ(parsed->numberOr("seeds", 0), 8.0);
    EXPECT_DOUBLE_EQ(parsed->numberOr("violation_rate", 0), 0.25);
    EXPECT_DOUBLE_EQ(parsed->numberOr("finetune_loss", 0), 0.125);
    const JsonValue *candidates = parsed->find("candidates");
    ASSERT_NE(candidates, nullptr);
    ASSERT_EQ(candidates->asArray().size(), 2u);
    EXPECT_DOUBLE_EQ(candidates->asArray()[0].numberOr(
                         "predicted_sec", 0.0),
                     1e-3);
    EXPECT_DOUBLE_EQ(candidates->asArray()[0].numberOr(
                         "measured_sec", 0.0),
                     2e-3);
}

TEST(RoundLog, EmptyPathDisablesLogger)
{
    RoundLogger logger("");
    EXPECT_FALSE(logger.enabled());
    logger.append(RoundRecord{});   // must be a safe no-op
}

} // namespace
} // namespace obs
} // namespace felix
