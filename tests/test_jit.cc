/**
 * @file
 * Copy-and-patch tape JIT and fused-step parity matrix (ctest label
 * "jit"): the JIT'd tape and the fused surrogate gradient step must
 * be bit-identical to the scalar interpreter on every backend at
 * every ragged batch width, on random tapes and on a full
 * gradient-search round. Also pins the FELIX_JIT knob semantics
 * (setEnabled / the jit.enabled gauge), the interpreter fallback
 * (JIT off must reproduce JIT on, byte for byte — the same contract
 * the --no-jit run of determinism_smoke.cmake checks end to end),
 * and the W^X lifecycle of the emitted code pages (never
 * writable+executable; verified against /proc/self/maps). Re-run
 * under sanitizers with cmake -DFELIX_SANITIZE=... && ctest -L jit.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "costmodel/cost_model.h"
#include "costmodel/dataset.h"
#include "costmodel/fused.h"
#include "expr/compiled.h"
#include "jit/jit.h"
#include "obs/metrics.h"
#include "optim/search.h"
#include "sim/gpu_model.h"
#include "simd/kernels.h"
#include "support/batch.h"
#include "support/rng.h"
#include "tir/ops.h"

namespace felix {
namespace jit {
namespace {

uint64_t
bitsOf(double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

/** Bit-level equality: distinguishes -0.0/+0.0, equates NaN bits. */
#define EXPECT_BITEQ(a, b)                                            \
    EXPECT_EQ(bitsOf(a), bitsOf(b)) << "values " << (a) << " vs "     \
                                    << (b)

/** Pins one SIMD backend for a scope, restores auto-detect. */
class WidthGuard
{
  public:
    explicit WidthGuard(int width)
    {
        ok_ = simd::setPreferredWidth(width);
    }
    ~WidthGuard() { simd::setPreferredWidth(0); }
    bool ok() const { return ok_; }

  private:
    bool ok_;
};

/** Forces the JIT on or off for a scope, restores the prior state. */
class JitGuard
{
  public:
    explicit JitGuard(bool on) : was_(enabled()) { setEnabled(on); }
    ~JitGuard() { setEnabled(was_); }

  private:
    bool was_;
};

/** Same random expression shape as the test_simd parity suite. */
expr::Expr
randomExpr(Rng &rng, const std::vector<std::string> &vars, int depth)
{
    using expr::Expr;
    if (depth <= 0 || rng.bernoulli(0.25)) {
        if (rng.bernoulli(0.5))
            return Expr::var(vars[rng.index(vars.size())]);
        return Expr::constant(rng.uniform(0.25, 4.0));
    }
    Expr a = randomExpr(rng, vars, depth - 1);
    Expr b = randomExpr(rng, vars, depth - 1);
    switch (rng.index(13)) {
      case 0: return a + b;
      case 1: return a - b;
      case 2: return a * b;
      case 3: return a / (abs(b) + 0.5);
      case 4: return exp(a * 0.25);
      case 5: return log(abs(a) + 0.5);
      case 6: return sqrt(abs(a) + 0.1);
      case 7: return sigmoid(a);
      case 8: return atan(a);
      case 9: return min(a, b);
      case 10: return max(a, b);
      case 11: return select(gt(a, b), a + 1.0, b * 2.0);
      default: return floor(a);
    }
}

// ---------------------------------------------------------------
// Knob semantics: setEnabled outranks the environment, publishes
// the jit.enabled gauge, and takes effect on already-compiled
// tapes (checked per batch call, not at compile time).
// ---------------------------------------------------------------

TEST(JitKnob, SetEnabledDrivesEnabledAndGauge)
{
    const bool before = enabled();
    setEnabled(false);
    EXPECT_FALSE(enabled());
    EXPECT_EQ(obs::MetricsRegistry::instance()
                  .gauge("jit.enabled")
                  .value(),
              0.0);
    setEnabled(true);
    EXPECT_TRUE(enabled());
    EXPECT_EQ(obs::MetricsRegistry::instance()
                  .gauge("jit.enabled")
                  .value(),
              1.0);
    setEnabled(before);
}

TEST(JitKnob, SupportedIsConsistentWithCompile)
{
    using expr::Expr;
    const std::vector<std::string> vars = {"a", "b"};
    std::vector<Expr> roots = {Expr::var("a") * Expr::var("b") + 1.0};
    expr::CompiledExprs compiled(roots, vars);
    auto tape = JitTape::compile(compiled.program());
    if (supported()) {
        ASSERT_NE(tape, nullptr);
        EXPECT_GT(tape->codeBytes(), 0u);
        EXPECT_TRUE(tape->hasBackward());
        EXPECT_NE(tape->codePtr(), nullptr);
    } else {
        EXPECT_EQ(tape, nullptr);
    }
}

// ---------------------------------------------------------------
// JIT vs interpreter vs scalar engine: bit-exact on random tapes at
// every ragged width, on every backend. When the JIT is unsupported
// (non-x86, no AVX2) the "JIT on" pass IS the interpreter, so this
// test also exercises the transparent fallback everywhere.
// ---------------------------------------------------------------

TEST(JitParity, ForwardBackwardVsInterpreterEveryBackendEveryWidth)
{
    using expr::CompiledExprs;
    using expr::Expr;
    Rng rng(90210);
    const std::vector<std::string> vars = {"u", "v", "w"};
    constexpr size_t L = kBatchLanes;
    const std::vector<int> widths = simd::availableWidths();
    WidthGuard restore(0);

    for (int trial = 0; trial < 8; ++trial) {
        std::vector<Expr> roots;
        for (int r = 0; r < 4; ++r)
            roots.push_back(randomExpr(rng, vars, 5));
        CompiledExprs compiled(roots, vars);
        const size_t numVars = compiled.numVars();
        const size_t numOutputs = compiled.numOutputs();

        for (size_t width = 1; width <= L; ++width) {
            std::vector<double> inputs(numVars * L, 0.0);
            std::vector<double> outputGrads(numOutputs * L, 0.0);
            std::vector<std::vector<double>> points(width);
            std::vector<std::vector<double>> seeds(width);
            for (size_t l = 0; l < width; ++l) {
                for (size_t v = 0; v < numVars; ++v) {
                    points[l].push_back(rng.uniform(-2.5, 2.5));
                    inputs[v * L + l] = points[l][v];
                }
                for (size_t k = 0; k < numOutputs; ++k) {
                    seeds[l].push_back(rng.uniform(-2.0, 2.0));
                    outputGrads[k * L + l] = seeds[l][k];
                }
            }

            // Scalar per-point reference engine.
            expr::EvalState scalarState;
            std::vector<std::vector<double>> refOut(width);
            std::vector<std::vector<double>> refGrad(width);
            for (size_t l = 0; l < width; ++l) {
                compiled.forward(points[l], refOut[l], scalarState);
                compiled.backward(seeds[l], refGrad[l], scalarState);
            }

            for (int w : widths) {
                ASSERT_TRUE(simd::setPreferredWidth(w));
                for (bool useJit : {false, true}) {
                    JitGuard jitState(useJit);
                    expr::BatchEvalState batchState;
                    std::vector<double> outputs(numOutputs * L);
                    std::vector<double> inputGrads(numVars * L);
                    compiled.forwardBatch(inputs.data(), width,
                                          outputs.data(),
                                          batchState);
                    compiled.backwardBatch(outputGrads.data(),
                                           inputGrads.data(),
                                           batchState);
                    for (size_t l = 0; l < width; ++l) {
                        for (size_t k = 0; k < numOutputs; ++k)
                            EXPECT_BITEQ(outputs[k * L + l],
                                         refOut[l][k])
                                << "backend "
                                << simd::activeBackendName()
                                << " jit " << useJit << " width "
                                << width << " lane " << l;
                        for (size_t v = 0; v < numVars; ++v)
                            EXPECT_BITEQ(inputGrads[v * L + l],
                                         refGrad[l][v])
                                << "backend "
                                << simd::activeBackendName()
                                << " jit " << useJit << " width "
                                << width << " lane " << l;
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------
// Fused step vs the unfused reference sequence: same tape, same
// model, every backend, every ragged width, JIT on and off. The
// tape has deliberate penalty outputs so the conditional penalty
// seeding is exercised.
// ---------------------------------------------------------------

TEST(JitParity, FusedStepVsUnfusedEveryBackendEveryWidth)
{
    using expr::CompiledExprs;
    using expr::Expr;
    constexpr size_t L = kBatchLanes;
    constexpr size_t kFeatures = 5;
    constexpr size_t kPenalties = 2;
    Rng rng(1618);
    const std::vector<std::string> vars = {"p", "q", "r"};

    std::vector<Expr> roots;
    for (size_t k = 0; k < kFeatures + kPenalties; ++k)
        roots.push_back(randomExpr(rng, vars, 4));
    CompiledExprs compiled(roots, vars);
    const size_t numVars = compiled.numVars();

    // A small fitted model over kFeatures inputs.
    std::vector<costmodel::Sample> samples(32);
    for (auto &sample : samples) {
        sample.rawFeatures.resize(kFeatures);
        for (double &v : sample.rawFeatures)
            v = rng.uniform(0.0, 1e4);
        sample.latencySec = rng.uniform(1e-5, 1e-2);
    }
    costmodel::MlpConfig config;
    config.layerSizes = {static_cast<int>(kFeatures), 8, 1};
    costmodel::CostModel model(config, 9);
    model.fit(samples, /*epochs=*/2, /*batch_size=*/16, 1e-3);

    const double lambda = 10.0;
    costmodel::FusedGradStep fused(compiled, model, kFeatures,
                                   kPenalties, lambda);

    const std::vector<int> widths = simd::availableWidths();
    WidthGuard restore(0);
    for (int w : widths) {
        ASSERT_TRUE(simd::setPreferredWidth(w));
        for (bool useJit : {false, true}) {
            JitGuard jitState(useJit);
            for (size_t width = 1; width <= L; ++width) {
                std::vector<double> inputs(numVars * L);
                for (double &v : inputs)
                    v = rng.uniform(-2.0, 2.0);

                // Unfused reference: the exact sequence
                // GradientSearch::round runs with useFused=false.
                expr::BatchEvalState refState;
                costmodel::PredictScratch refPredict;
                std::vector<double> outputs((kFeatures + kPenalties) *
                                            L);
                std::vector<double> outputGrads(outputs.size(), 0.0);
                std::vector<double> modelGrads(kFeatures * L);
                std::vector<double> refGrads(numVars * L);
                double refScores[kBatchLanes];
                compiled.forwardBatch(inputs.data(), width,
                                      outputs.data(), refState);
                model.predictTransformedWithGradBatch(
                    outputs.data(), refScores, modelGrads.data(),
                    refPredict);
                for (size_t k = 0; k < kFeatures; ++k)
                    for (size_t l = 0; l < width; ++l)
                        outputGrads[k * L + l] =
                            -modelGrads[k * L + l];
                for (size_t p = 0; p < kPenalties; ++p) {
                    const size_t row = (kFeatures + p) * L;
                    for (size_t l = 0; l < width; ++l) {
                        const double g = outputs[row + l];
                        if (g > 0.0)
                            outputGrads[row + l] = lambda * 2.0 * g;
                    }
                }
                compiled.backwardBatch(outputGrads.data(),
                                       refGrads.data(), refState);

                expr::BatchEvalState fusedState;
                costmodel::PredictScratch fusedPredict;
                std::vector<double> fusedGrads(numVars * L);
                double fusedScores[kBatchLanes];
                fused.run(inputs.data(), width, fusedScores,
                          fusedGrads.data(), fusedState,
                          fusedPredict);

                for (size_t l = 0; l < width; ++l) {
                    EXPECT_BITEQ(fusedScores[l], refScores[l])
                        << "backend " << simd::activeBackendName()
                        << " jit " << useJit << " width " << width
                        << " lane " << l;
                    for (size_t v = 0; v < numVars; ++v)
                        EXPECT_BITEQ(fusedGrads[v * L + l],
                                     refGrads[v * L + l])
                            << "backend "
                            << simd::activeBackendName() << " jit "
                            << useJit << " width " << width
                            << " lane " << l;
                }
            }
        }
    }
}

// ---------------------------------------------------------------
// End to end: a full gradient-search round with the fused step and
// the JIT live vs the unfused interpreter round, bit for bit —
// candidates, scores, trace.
// ---------------------------------------------------------------

TEST(JitParity, SearchRoundFusedJitVsUnfusedInterpreterBitExact)
{
    costmodel::DatasetOptions datasetOptions;
    datasetOptions.numSubgraphs = 4;
    datasetOptions.schedulesPerSketch = 16;
    datasetOptions.seed = 3;
    auto samples = costmodel::synthesizeDataset(
        sim::deviceConfig(sim::DeviceKind::A5000), datasetOptions);
    costmodel::MlpConfig config;
    config.layerSizes = {82, 32, 1};
    costmodel::CostModel model(config, 11);
    model.fit(samples, /*epochs=*/2, /*batch=*/64, /*lr=*/1e-3);

    auto subgraph = tir::dense(128, 128, 128, false);
    optim::GradSearchOptions options;
    options.nSeeds = 5;
    options.nSteps = 25;
    options.nMeasure = 6;
    options.useBatch = true;

    optim::RoundResult results[2];
    for (int pass = 0; pass < 2; ++pass) {
        const bool fusedJit = pass == 1;
        JitGuard jitState(fusedJit);
        options.useFused = fusedJit;
        optim::GradientSearch search(subgraph, options);
        Rng rng(2025);
        results[pass] = search.round(model, rng);
    }

    const optim::RoundResult &ref = results[0];
    const optim::RoundResult &got = results[1];
    ASSERT_EQ(ref.toMeasure.size(), got.toMeasure.size());
    for (size_t i = 0; i < ref.toMeasure.size(); ++i) {
        const optim::Candidate &a = ref.toMeasure[i];
        const optim::Candidate &b = got.toMeasure[i];
        EXPECT_EQ(a.sketchIndex, b.sketchIndex);
        ASSERT_EQ(a.x.size(), b.x.size());
        for (size_t v = 0; v < a.x.size(); ++v)
            EXPECT_BITEQ(a.x[v], b.x[v]);
        EXPECT_BITEQ(a.predictedScore, b.predictedScore);
    }
    ASSERT_EQ(ref.trace.visitedScores.size(),
              got.trace.visitedScores.size());
    for (size_t i = 0; i < ref.trace.visitedScores.size(); ++i)
        EXPECT_BITEQ(ref.trace.visitedScores[i],
                     got.trace.visitedScores[i]);
    EXPECT_EQ(ref.trace.roundingAttempts, got.trace.roundingAttempts);
    EXPECT_EQ(ref.trace.roundingInvalid, got.trace.roundingInvalid);
}

// ---------------------------------------------------------------
// W^X lifecycle: the emitted code pages must be readable+executable
// and never writable, and the process must hold no
// writable+executable mapping at all (the emission buffer is
// unmapped or protected before any code runs).
// ---------------------------------------------------------------

#ifdef __linux__
TEST(JitWX, CodePagesAreRXAndProcessHasNoRWXMapping)
{
    if (!supported())
        GTEST_SKIP() << "JIT unsupported on this host";

    using expr::Expr;
    const std::vector<std::string> vars = {"a", "b"};
    std::vector<Expr> roots = {
        sigmoid(Expr::var("a")) *
        max(Expr::var("b"), Expr::constant(0.5))};
    expr::CompiledExprs compiled(roots, vars);
    auto tape = JitTape::compile(compiled.program());
    ASSERT_NE(tape, nullptr);
    const uintptr_t code =
        reinterpret_cast<uintptr_t>(tape->codePtr());

    std::ifstream maps("/proc/self/maps");
    ASSERT_TRUE(maps.is_open());
    std::string line;
    bool foundCode = false;
    while (std::getline(maps, line)) {
        uintptr_t lo = 0, hi = 0;
        char perms[5] = {0};
        if (std::sscanf(line.c_str(), "%lx-%lx %4s",
                        reinterpret_cast<unsigned long *>(&lo),
                        reinterpret_cast<unsigned long *>(&hi),
                        perms) != 3)
            continue;
        const bool w = perms[1] == 'w';
        const bool x = perms[2] == 'x';
        EXPECT_FALSE(w && x)
            << "writable+executable mapping: " << line;
        if (code >= lo && code < hi) {
            foundCode = true;
            EXPECT_EQ(perms[0], 'r') << line;
            EXPECT_FALSE(w) << "JIT code page writable: " << line;
            EXPECT_TRUE(x) << "JIT code page not executable: "
                           << line;
        }
    }
    EXPECT_TRUE(foundCode)
        << "JIT code mapping not found in /proc/self/maps";

    // The compiled functions still execute after the flip to R|X.
    constexpr size_t L = kBatchLanes;
    expr::BatchEvalState state;
    std::vector<double> inputs(compiled.numVars() * L, 1.25);
    std::vector<double> outputs(compiled.numOutputs() * L);
    JitGuard jitOn(true);
    compiled.forwardBatch(inputs.data(), L, outputs.data(), state);
    for (size_t l = 0; l < L; ++l)
        EXPECT_TRUE(std::isfinite(outputs[l]));
}
#endif // __linux__

// ---------------------------------------------------------------
// Compile-count metrics: a batched call with the JIT on compiles
// the tape exactly once (double-checked cache), and the counters
// stay out of the deterministic metrics snapshot (shard/checkpoint
// runs compare snapshots across process topologies).
// ---------------------------------------------------------------

TEST(JitMetrics, CompileCountersAreProcessLocalNotDeterministic)
{
    if (!supported())
        GTEST_SKIP() << "JIT unsupported on this host";
    JitGuard jitOn(true);

    auto &registry = obs::MetricsRegistry::instance();
    const double before =
        registry.counter("jit.tapes_compiled").value();

    using expr::Expr;
    const std::vector<std::string> vars = {"a"};
    std::vector<Expr> roots = {exp(Expr::var("a")) + 1.0};
    expr::CompiledExprs compiled(roots, vars);
    constexpr size_t L = kBatchLanes;
    expr::BatchEvalState state;
    std::vector<double> inputs(L, 0.5), outputs(L);
    for (int i = 0; i < 3; ++i)
        compiled.forwardBatch(inputs.data(), L, outputs.data(),
                              state);
    EXPECT_EQ(registry.counter("jit.tapes_compiled").value(),
              before + 1.0)
        << "lazy compile should run exactly once per tape";

    // jit.* metrics describe THIS process's JIT activity, which
    // differs across shard/resume topologies — they must be
    // filtered from the deterministic snapshot.
    const obs::MetricsSnapshot det =
        registry.snapshot().deterministic();
    for (const auto &entry : det.counters)
        EXPECT_NE(entry.first.rfind("jit.", 0), 0u)
            << "jit.* counter in deterministic snapshot: "
            << entry.first;
    for (const auto &entry : det.gauges)
        EXPECT_NE(entry.first.rfind("jit.", 0), 0u)
            << "jit.* gauge in deterministic snapshot: "
            << entry.first;
}

} // namespace
} // namespace jit
} // namespace felix
