/**
 * @file
 * Cross-module property suites, parameterized over many operator
 * shapes: every sketch of every shape must produce a symbolic
 * program whose loop structure conserves the iteration domain, whose
 * features are finite/exact, and whose sampled schedules are valid;
 * the simulator must respect basic physical bounds on all of them.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "expr/compiled.h"
#include "features/features.h"
#include "rewrite/transforms.h"
#include "sim/gpu_model.h"
#include "sketch/sampling.h"
#include "sketch/sketch.h"
#include "support/logging.h"
#include "support/string_util.h"
#include "tir/ops.h"

namespace felix {
namespace {

/** A named workload shape for the parameterized sweeps. */
struct Shape
{
    std::string name;
    tir::SubgraphDef subgraph;
};

std::vector<Shape>
sweepShapes()
{
    std::vector<Shape> shapes;
    // Dense family, including awkward extents (primes, non-pow2).
    for (auto [n, m, k] :
         std::vector<std::tuple<int64_t, int64_t, int64_t>>{
             {64, 64, 64},
             {100, 11008, 4096},
             {1, 1000, 2048},
             {50, 2304, 768},
             {7, 13, 17},           // all primes
             {96, 384, 60}}) {
        shapes.push_back({strformat("dense_%lldx%lldx%lld",
                                    (long long)n, (long long)m,
                                    (long long)k),
                          tir::dense(n, m, k, true)});
    }
    // Convolutions.
    for (auto [c, hw, kk, r, stride, groups] :
         std::vector<std::array<int64_t, 6>>{
             {3, 224, 64, 7, 2, 1},
             {64, 56, 64, 3, 1, 1},
             {96, 14, 96, 3, 1, 96},   // depthwise
             {256, 7, 512, 1, 1, 1},
             {32, 30, 48, 5, 3, 1}}) {
        tir::Conv2dConfig config;
        config.c = c;
        config.h = config.w = hw;
        config.k = kk;
        config.r = config.s = r;
        config.stride = stride;
        config.pad = r / 2;
        config.groups = groups;
        config.bias = true;
        config.epilogue = tir::Epilogue::Relu;
        shapes.push_back({strformat("conv_%lldc_%lldhw_g%lld",
                                    (long long)c, (long long)hw,
                                    (long long)groups),
                          tir::conv2d(config)});
    }
    {
        tir::Conv3dConfig config;
        config.c = 64;
        config.d = 8;
        config.h = config.w = 28;
        config.k = 64;
        shapes.push_back({"conv3d", tir::conv3d(config)});
        tir::TConv2dConfig tconfig;
        tconfig.c = 128;
        tconfig.h = tconfig.w = 16;
        tconfig.k = 64;
        tconfig.stride = 2;
        tconfig.pad = 1;
        shapes.push_back({"tconv2d", tir::tconv2d(tconfig)});
    }
    shapes.push_back({"bmm", tir::batchMatmul(12, 50, 64, 50)});
    shapes.push_back({"softmax", tir::softmax(600, 50)});
    shapes.push_back({"maxpool",
                      tir::maxPool2d(1, 64, 112, 112, 2, 2)});
    shapes.push_back({"layernorm", tir::layerNorm(197, 768)});
    {
        tir::ArithCounts arith;
        arith.add = 1;
        shapes.push_back({"eltwise",
                          tir::elementwise(1 << 18, 2, arith)});
    }
    return shapes;
}

class ShapeSweep : public ::testing::TestWithParam<int>
{
  protected:
    const Shape &
    shape() const
    {
        static const std::vector<Shape> shapes = sweepShapes();
        return shapes[GetParam()];
    }
};

/**
 * Domain conservation: for any valid schedule, the product of all
 * loop extents of the dominant stage equals the op's iteration
 * count — transformations never lose or duplicate work.
 */
TEST_P(ShapeSweep, LoopNestConservesIterationDomain)
{
    const Shape &sh = shape();
    Rng rng(17);
    for (const auto &sched : sketch::generateSketches(sh.subgraph)) {
        std::vector<std::string> names;
        for (const auto &domain : sched.vars)
            names.push_back(domain.name);
        const auto &root =
            sched.program.stages[sched.program.rootStage];
        expr::Expr product = expr::Expr::constant(1.0);
        for (const auto &loop : root.loops)
            product = product * loop.extent;
        expr::CompiledExprs compiled({product}, names);

        const double expected = static_cast<double>(
            sh.subgraph.dominantOp().totalPoints());
        for (int i = 0; i < 8; ++i) {
            auto x = sketch::sampleValid(sched, rng);
            double total = compiled.eval(x)[0];
            EXPECT_NEAR(total, expected, expected * 1e-9)
                << sh.name << " / " << sched.desc;
        }
    }
}

/** Sampled schedules are always valid; rounding them is stable. */
TEST_P(ShapeSweep, SamplingAndRoundingAreConsistent)
{
    const Shape &sh = shape();
    Rng rng(23);
    for (const auto &sched : sketch::generateSketches(sh.subgraph)) {
        sketch::ConstraintChecker checker(sched);
        for (int i = 0; i < 8; ++i) {
            auto x = sketch::sampleValid(sched, rng);
            ASSERT_TRUE(sketch::isValidAssignment(sched, x))
                << sh.name << " / " << sched.desc;
            // Rounding the log of a valid point returns a valid
            // point (not necessarily identical: greedy group
            // re-snapping may shuffle factors within a group).
            std::vector<double> y(x.size());
            for (size_t j = 0; j < x.size(); ++j)
                y[j] = std::log(std::max(1.0, x[j]));
            auto rounded = sketch::roundToValid(sched, y, checker);
            ASSERT_TRUE(rounded.has_value())
                << sh.name << " / " << sched.desc;
            EXPECT_TRUE(sketch::isValidAssignment(sched, *rounded))
                << sh.name << " / " << sched.desc;
        }
    }
}

/** All 82 features are finite and non-negative on valid schedules. */
TEST_P(ShapeSweep, FeaturesFiniteAndNonNegative)
{
    const Shape &sh = shape();
    Rng rng(31);
    for (const auto &sched : sketch::generateSketches(sh.subgraph)) {
        std::vector<std::string> names;
        for (const auto &domain : sched.vars)
            names.push_back(domain.name);
        auto formulas = features::extractFeatures(sched.program);
        expr::CompiledExprs compiled(formulas, names);
        for (int i = 0; i < 4; ++i) {
            auto x = sketch::sampleValid(sched, rng);
            auto f = compiled.eval(x);
            for (int j = 0; j < features::kNumFeatures; ++j) {
                ASSERT_TRUE(std::isfinite(f[j]))
                    << sh.name << " " << features::featureNames()[j];
                ASSERT_GE(f[j], 0.0)
                    << sh.name << " " << features::featureNames()[j];
            }
            // flops_total is schedule-invariant and matches the
            // workload definition.
            EXPECT_NEAR(f[features::featureIndex("flops_total")],
                        sh.subgraph.totalFlops(),
                        sh.subgraph.totalFlops() * 1e-6 + 1.0)
                << sh.name << " / " << sched.desc;
        }
    }
}

/** The smoothed pipeline stays finite-differentiable everywhere. */
TEST_P(ShapeSweep, SmoothedObjectiveHasFiniteGradients)
{
    const Shape &sh = shape();
    auto sketches = sketch::generateSketches(sh.subgraph);
    const auto &sched = sketches.front();
    std::vector<std::string> names;
    for (const auto &domain : sched.vars)
        names.push_back(domain.name);
    auto raw = features::extractFeatures(sched.program);
    std::vector<expr::Expr> outputs;
    for (const auto &f : raw)
        outputs.push_back(rewrite::featurePipeline(f, names));
    expr::CompiledExprs compiled(outputs, names);

    Rng rng(41);
    std::vector<double> out, grads;
    for (int i = 0; i < 6; ++i) {
        std::vector<double> y(names.size());
        for (double &v : y)
            v = rng.uniform(0.0, 4.0);   // arbitrary log-space point
        compiled.forward(y, out);
        std::vector<double> seed(out.size(), 1.0);
        compiled.backward(seed, grads);
        for (double g : grads)
            ASSERT_TRUE(std::isfinite(g)) << sh.name;
    }
}

/** Simulator sanity on every shape: latency within physical bounds. */
TEST_P(ShapeSweep, SimulatorRespectsRooflineBounds)
{
    const Shape &sh = shape();
    const auto &device = sim::deviceConfig(sim::DeviceKind::A5000);
    Rng rng(53);
    const double roofline =
        sh.subgraph.totalFlops() / device.peakFlops();
    for (const auto &sched : sketch::generateSketches(sh.subgraph)) {
        std::vector<std::string> names;
        for (const auto &domain : sched.vars)
            names.push_back(domain.name);
        auto formulas = features::extractFeatures(sched.program);
        expr::CompiledExprs compiled(formulas, names);
        for (int i = 0; i < 4; ++i) {
            auto x = sketch::sampleValid(sched, rng);
            double latency = sim::kernelLatency(compiled.eval(x),
                                                device);
            // Never faster than the compute roofline + launch.
            EXPECT_GE(latency,
                      roofline + device.launchOverheadUs * 1e-6 -
                          1e-12)
                << sh.name << " / " << sched.desc;
            EXPECT_LT(latency, 100.0) << sh.name;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, ShapeSweep,
    ::testing::Range(0, static_cast<int>(sweepShapes().size())),
    [](const ::testing::TestParamInfo<int> &info) {
        static const std::vector<Shape> shapes = sweepShapes();
        std::string name = shapes[info.param].name;
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

} // namespace
} // namespace felix
