/**
 * @file
 * Tests for the simulated inference-framework baselines: support
 * matrix, latency structure, and the paper's qualitative ordering
 * (TensorRT fastest library; conv3d near roofline; small layers
 * penalized).
 */
#include <gtest/gtest.h>

#include "frameworks/frameworks.h"
#include "graph/graph.h"
#include "models/models.h"

namespace felix {
namespace frameworks {
namespace {

using sim::DeviceKind;

TEST(Support, MatchesPaperFailures)
{
    // LLaMA: PyTorch only, never on Xavier, not at batch 16.
    EXPECT_TRUE(frameworkSupports(Framework::PyTorch, "LLaMA",
                                  DeviceKind::A5000, 1));
    EXPECT_FALSE(frameworkSupports(Framework::TensorFlow, "LLaMA",
                                   DeviceKind::A5000, 1));
    EXPECT_FALSE(frameworkSupports(Framework::TensorRT, "LLaMA",
                                   DeviceKind::A5000, 1));
    EXPECT_FALSE(frameworkSupports(Framework::PyTorch, "LLaMA",
                                   DeviceKind::XavierNX, 1));
    EXPECT_FALSE(frameworkSupports(Framework::PyTorch, "LLaMA",
                                   DeviceKind::A5000, 16));
    // ViT on Xavier under TensorFlow OOMs.
    EXPECT_FALSE(frameworkSupports(Framework::TensorFlow, "ViT-B/32",
                                   DeviceKind::XavierNX, 1));
    EXPECT_TRUE(frameworkSupports(Framework::TensorRT, "ViT-B/32",
                                  DeviceKind::XavierNX, 1));
    // Everything else runs everywhere.
    EXPECT_TRUE(frameworkSupports(Framework::TensorFlow, "ResNet-50",
                                  DeviceKind::XavierNX, 16));
}

TEST(Latency, PositiveAndDeviceOrdered)
{
    auto tasks = graph::partition(models::resnet50(1));
    for (Framework framework : allFrameworks()) {
        double a10g = networkLatency(
            tasks, sim::deviceConfig(DeviceKind::A10G), framework);
        double xavier = networkLatency(
            tasks, sim::deviceConfig(DeviceKind::XavierNX), framework);
        EXPECT_GT(a10g, 0.0);
        EXPECT_GT(xavier, 4.0 * a10g) << frameworkName(framework);
    }
}

TEST(Latency, TensorRTIsTheFastestLibrary)
{
    auto tasks = graph::partition(models::resnet50(1));
    const auto &device = sim::deviceConfig(DeviceKind::A5000);
    double pt = networkLatency(tasks, device, Framework::PyTorch);
    double tf = networkLatency(tasks, device, Framework::TensorFlow);
    double trt = networkLatency(tasks, device, Framework::TensorRT);
    EXPECT_LT(trt, pt);
    EXPECT_LT(pt, tf);
}

TEST(Latency, Conv3dRunsNearRoofline)
{
    tir::Conv3dConfig config;
    config.c = 64;
    config.d = 8;
    config.h = config.w = 56;
    config.k = 64;
    graph::Task task;
    task.subgraph = tir::conv3d(config);
    task.anchorType = graph::OpType::Conv3d;
    const auto &device = sim::deviceConfig(DeviceKind::A5000);
    double latency =
        libraryTaskLatency(task, device, Framework::PyTorch);
    double roofline = task.subgraph.totalFlops() / device.peakFlops();
    // Within ~1.4x of the compute roofline: hand-tuned kernels.
    EXPECT_LT(latency, roofline * 1.45);
}

TEST(Latency, SmallLayersPayHeavyOverheads)
{
    // A tiny conv: overhead-dominated in libraries.
    tir::Conv2dConfig config;
    config.c = 160;
    config.h = config.w = 7;
    config.k = 160;
    graph::Task task;
    task.subgraph = tir::conv2d(config);
    task.anchorType = graph::OpType::Conv2d;
    const auto &device = sim::deviceConfig(DeviceKind::A5000);
    double latency =
        libraryTaskLatency(task, device, Framework::PyTorch);
    double roofline = task.subgraph.totalFlops() / device.peakFlops();
    EXPECT_GT(latency, roofline * 5.0);
}

TEST(Latency, DepthwiseConvHandledPoorly)
{
    tir::Conv2dConfig dense;
    dense.c = 128;
    dense.h = dense.w = 28;
    dense.k = 128;
    tir::Conv2dConfig depthwise = dense;
    depthwise.groups = 128;

    graph::Task denseTask;
    denseTask.subgraph = tir::conv2d(dense);
    denseTask.anchorType = graph::OpType::Conv2d;
    graph::Task dwTask;
    dwTask.subgraph = tir::conv2d(depthwise);
    dwTask.anchorType = graph::OpType::Conv2d;

    const auto &device = sim::deviceConfig(DeviceKind::A5000);
    double denseEff =
        denseTask.subgraph.totalFlops() / device.peakFlops() /
        libraryTaskLatency(denseTask, device, Framework::PyTorch);
    double dwEff =
        dwTask.subgraph.totalFlops() / device.peakFlops() /
        libraryTaskLatency(dwTask, device, Framework::PyTorch);
    EXPECT_LT(dwEff, denseEff);
}

TEST(BestLibrary, SkipsUnsupportedFrameworks)
{
    auto tasks = graph::partition(models::llama(1, 100));
    const auto &device = sim::deviceConfig(DeviceKind::A5000);
    double best = bestLibraryLatency(tasks, "LLaMA", device, 1);
    double pytorch =
        networkLatency(tasks, device, Framework::PyTorch);
    EXPECT_DOUBLE_EQ(best, pytorch);   // only PyTorch supports LLaMA
}

TEST(BestLibrary, NegativeWhenNothingSupports)
{
    auto tasks = graph::partition(models::llama(1, 100));
    const auto &device = sim::deviceConfig(DeviceKind::XavierNX);
    EXPECT_LT(bestLibraryLatency(tasks, "LLaMA", device, 1), 0.0);
}

} // namespace
} // namespace frameworks
} // namespace felix
