/**
 * @file
 * Integration tests of the full-graph tuner (Algorithm 2) and the
 * public felix:: API: virtual clock accounting, task scheduling,
 * monotone best-latency curves, Felix vs Ansor time-to-quality, and
 * module persistence.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/felix.h"
#include "costmodel/dataset.h"
#include "models/models.h"
#include "tuner/tuner.h"

namespace felix {
namespace tuner {
namespace {

/** Small deterministic cost model shared by the tuner tests. */
const costmodel::CostModel &
testModel()
{
    static const costmodel::CostModel model = [] {
        costmodel::DatasetOptions options;
        options.numSubgraphs = 10;
        options.schedulesPerSketch = 48;
        options.seed = 7;
        auto samples = costmodel::synthesizeDataset(
            sim::deviceConfig(sim::DeviceKind::A5000), options);
        costmodel::MlpConfig config;
        config.layerSizes = {82, 64, 64, 1};
        costmodel::CostModel model(config, 7);
        model.fit(samples, 8, 128, 1.5e-3);
        return model;
    }();
    return model;
}

/** A small two-task network for quick tuning tests. */
std::vector<graph::Task>
tinyTasks()
{
    graph::Graph g("tiny");
    tir::Conv2dConfig conv;
    conv.c = 32;
    conv.h = conv.w = 28;
    conv.k = 64;
    int x = g.addConv2d(conv, -1, "conv");
    x = g.addEpilogue(graph::OpType::Relu, x);
    graph::DenseParams fc;
    fc.n = 64;
    fc.m = 256;
    fc.k = 256;
    g.addDense(fc, x, "fc");
    return graph::partition(g);
}

TunerOptions
fastOptions(StrategyKind strategy, uint64_t seed = 1)
{
    TunerOptions options;
    options.strategy = strategy;
    options.seed = seed;
    options.grad.nSeeds = 4;
    options.grad.nSteps = 48;
    options.grad.nMeasure = 8;
    options.evo.population = 192;
    options.evo.generations = 4;
    options.evo.nMeasure = 24;
    return options;
}

TEST(GraphTunerTest, ClockAdvancesWithWork)
{
    GraphTuner tuner(tinyTasks(), testModel(),
                     sim::DeviceKind::A5000,
                     fastOptions(StrategyKind::FelixGradient));
    EXPECT_DOUBLE_EQ(tuner.clockNow(), 0.0);
    tuner.tuneRounds(2);
    // 2 rounds: >= 2 * (overhead + 192 preds * 2.5 * 1ms + 8 meas).
    EXPECT_GT(tuner.clockNow(), 2.0);
    EXPECT_GT(tuner.totalMeasurements(), 8);
}

TEST(GraphTunerTest, LatencyImprovesAndIsMonotone)
{
    GraphTuner tuner(tinyTasks(), testModel(),
                     sim::DeviceKind::A5000,
                     fastOptions(StrategyKind::FelixGradient));
    double initial = tuner.networkLatency();
    tuner.tuneRounds(4);
    double tuned = tuner.networkLatency();
    EXPECT_LT(tuned, initial * 0.5);
    // The timeline's best-latency curve never increases.
    const auto &timeline = tuner.timeline();
    ASSERT_GE(timeline.size(), 3u);
    for (size_t i = 1; i < timeline.size(); ++i) {
        EXPECT_LE(timeline[i].networkLatencySec,
                  timeline[i - 1].networkLatencySec + 1e-12);
        EXPECT_GE(timeline[i].timeSec, timeline[i - 1].timeSec);
    }
}

TEST(GraphTunerTest, EveryTaskGetsTunedOnce)
{
    GraphTuner tuner(tinyTasks(), testModel(),
                     sim::DeviceKind::A5000,
                     fastOptions(StrategyKind::FelixGradient));
    tuner.tuneRounds(static_cast<int>(tuner.taskRecords().size()));
    for (const TaskRecord &record : tuner.taskRecords())
        EXPECT_GE(record.rounds, 1);
}

TEST(GraphTunerTest, TuneUntilRespectsBudget)
{
    GraphTuner tuner(tinyTasks(), testModel(),
                     sim::DeviceKind::A5000,
                     fastOptions(StrategyKind::FelixGradient));
    tuner.tuneUntil(15.0);
    EXPECT_GE(tuner.clockNow(), 15.0);
    EXPECT_LT(tuner.clockNow(), 60.0);   // one round past the budget
}

TEST(GraphTunerTest, AnsorStrategyAlsoImproves)
{
    GraphTuner tuner(tinyTasks(), testModel(),
                     sim::DeviceKind::A5000,
                     fastOptions(StrategyKind::AnsorTenSet));
    double initial = tuner.networkLatency();
    tuner.tuneRounds(4);
    EXPECT_LT(tuner.networkLatency(), initial * 0.5);
}

TEST(GraphTunerTest, FelixUsesCheaperRoundsThanAnsor)
{
    GraphTuner felix(tinyTasks(), testModel(),
                     sim::DeviceKind::A5000,
                     fastOptions(StrategyKind::FelixGradient));
    GraphTuner ansor(tinyTasks(), testModel(),
                     sim::DeviceKind::A5000,
                     fastOptions(StrategyKind::AnsorTenSet));
    felix.tuneRounds(2);
    ansor.tuneRounds(2);
    // Felix: ~192 grad-steps + 8 measurements per round; Ansor: ~768
    // predictions + 24 measurements per round.
    EXPECT_LT(felix.clockNow(), ansor.clockNow());
}

TEST(GraphTunerTest, FelixReachesQualityFasterInVirtualTime)
{
    // The paper's central claim, on a small instance: tuning to the
    // same virtual-time budget, Felix reaches a lower latency.
    const double budget = 25.0;
    GraphTuner felix(tinyTasks(), testModel(),
                     sim::DeviceKind::A5000,
                     fastOptions(StrategyKind::FelixGradient, 3));
    GraphTuner ansor(tinyTasks(), testModel(),
                     sim::DeviceKind::A5000,
                     fastOptions(StrategyKind::AnsorTenSet, 3));
    felix.tuneUntil(budget);
    ansor.tuneUntil(budget);
    EXPECT_LT(felix.networkLatency(), ansor.networkLatency() * 1.15)
        << "felix " << felix.networkLatency() << " ansor "
        << ansor.networkLatency();
}

TEST(GraphTunerTest, SchedulerPrioritizesHeavyTasks)
{
    // Two identical conv tasks, one with 12x the weight: after the
    // mandatory first pass, the heavy task must receive more rounds.
    graph::Graph g("weighted");
    tir::Conv2dConfig conv;
    conv.c = 32;
    conv.h = conv.w = 28;
    conv.k = 64;
    int x = -1;
    for (int i = 0; i < 12; ++i)
        x = g.addConv2d(conv, x, "hot");
    tir::Conv2dConfig cold = conv;
    cold.k = 48;   // structurally different => separate task
    g.addConv2d(cold, x, "cold");
    auto tasks = graph::partition(g);
    ASSERT_EQ(tasks.size(), 2u);

    GraphTuner tuner(tasks, testModel(), sim::DeviceKind::A5000,
                     fastOptions(StrategyKind::FelixGradient));
    tuner.tuneRounds(10);
    int hotRounds = 0, coldRounds = 0;
    for (const TaskRecord &record : tuner.taskRecords()) {
        if (record.task.weight >= 12)
            hotRounds = record.rounds;
        else
            coldRounds = record.rounds;
    }
    EXPECT_GT(hotRounds, coldRounds);
}

TEST(GraphTunerTest, MeasurementCountBounded)
{
    auto options = fastOptions(StrategyKind::FelixGradient);
    GraphTuner tuner(tinyTasks(), testModel(),
                     sim::DeviceKind::A5000, options);
    int initMeasurements = tuner.totalMeasurements();
    tuner.tuneRounds(5);
    EXPECT_LE(tuner.totalMeasurements() - initMeasurements,
              5 * options.grad.nMeasure);
}

TEST(GraphTunerTest, DeterministicGivenSeed)
{
    auto run = [&] {
        GraphTuner tuner(tinyTasks(), testModel(),
                         sim::DeviceKind::A5000,
                         fastOptions(StrategyKind::FelixGradient, 9));
        tuner.tuneRounds(4);
        return tuner.networkLatency();
    };
    EXPECT_DOUBLE_EQ(run(), run());
}

TEST(GraphTunerTest, WarmStartRefinesIncumbent)
{
    // The gradient search warm-starts one seed from the best
    // measured schedule; repeated rounds on one task must therefore
    // keep proposing candidates at least as good as the incumbent's
    // neighbourhood (no catastrophic forgetting across rounds).
    GraphTuner tuner(tinyTasks(), testModel(),
                     sim::DeviceKind::A5000,
                     fastOptions(StrategyKind::FelixGradient, 11));
    tuner.tuneRounds(2);
    double early = tuner.networkLatency();
    tuner.tuneRounds(8);
    EXPECT_LE(tuner.networkLatency(), early);
}

TEST(CoreApi, DeviceParsingAndConfig)
{
    Device device = Device::cuda("xavier-nx");
    EXPECT_EQ(device.kind, sim::DeviceKind::XavierNX);
    EXPECT_EQ(device.config().smCount, 6);
}

TEST(CoreApi, ExtractSubgraphsMatchesPartition)
{
    auto g = models::dcgan(1);
    EXPECT_EQ(extractSubgraphs(g).size(), graph::partition(g).size());
}

TEST(CoreApi, OptimizerEndToEnd)
{
    OptimizerOptions options;
    options.tuner = fastOptions(StrategyKind::FelixGradient);
    Optimizer opt(tinyTasks(), testModel(), Device::cuda("a5000"),
                  options);
    opt.optimizeAll(4, 8, "test_configs_tmp.cfg");
    CompiledModule module = opt.compileWithBestConfigs();
    EXPECT_GT(module.run(), 0.0);
    EXPECT_EQ(module.configs().size(), tinyTasks().size());

    // Saved artifact loads back with identical latency.
    auto loaded = CompiledModule::load("test_configs_tmp.cfg");
    ASSERT_TRUE(loaded.has_value());
    EXPECT_DOUBLE_EQ(loaded->run(), module.run());
    std::remove("test_configs_tmp.cfg");
}

TEST(Records, AppendLoadAndHistoryBest)
{
    const char *path = "test_records_tmp.log";
    std::remove(path);
    TuneRecord a{101, "conv", 0, {1, 2, 4}, 5e-5, 10.0};
    TuneRecord b{101, "conv", 1, {8, 2}, 3e-5, 20.0};
    TuneRecord c{202, "fc", 0, {16}, 9e-5, 30.0};
    appendRecord(path, a);
    appendRecord(path, b);
    appendRecord(path, c);
    auto loaded = loadRecords(path);
    ASSERT_EQ(loaded.size(), 3u);
    EXPECT_EQ(loaded[1].scheduleVars, (std::vector<double>{8, 2}));
    EXPECT_EQ(loaded[2].taskLabel, "fc");
    auto best = historyBest(loaded);
    ASSERT_EQ(best.size(), 2u);
    EXPECT_DOUBLE_EQ(best[0].latencySec, 3e-5);   // b beats a
    std::remove(path);
}

TEST(Records, LoadSkipsCorruptLines)
{
    const char *path = "test_records_corrupt_tmp.log";
    {
        std::ofstream os(path);
        os << "garbage line\n";
        os << "101 0 5e-05 10 2 1 2 conv\n";
        os << "102 0 not-a-number\n";
    }
    auto loaded = loadRecords(path);
    ASSERT_EQ(loaded.size(), 1u);
    EXPECT_EQ(loaded[0].taskHash, 101u);
    std::remove(path);
}

TEST(Records, TunerWritesReplayableLog)
{
    const char *path = "test_tuner_records_tmp.log";
    std::remove(path);
    auto options = fastOptions(StrategyKind::FelixGradient);
    options.recordLogPath = path;
    auto tasks = tinyTasks();
    GraphTuner tuner(tasks, testModel(), sim::DeviceKind::A5000,
                     options);
    tuner.tuneRounds(3);
    auto records = loadRecords(path);
    // Every tuning-round measurement is logged (the constructor's
    // naive-schedule initialization is not a tuning measurement).
    EXPECT_EQ(static_cast<int>(records.size()),
              tuner.totalMeasurements());

    // Apply-history-best reconstructs the tuned latency (modulo the
    // unlogged naive initialization of never-improved tasks).
    std::vector<std::string> missing;
    auto module = applyHistoryBest(tasks, records,
                                   Device::cuda("a5000"), &missing);
    EXPECT_TRUE(missing.empty());
    EXPECT_NEAR(module.run(), tuner.networkLatency(),
                tuner.networkLatency() * 0.05);
    std::remove(path);
}

TEST(CoreApi, ModuleLoadRejectsGarbage)
{
    EXPECT_FALSE(CompiledModule::load("/nonexistent").has_value());
}

} // namespace
} // namespace tuner
} // namespace felix
