/**
 * @file
 * Tests of the serving subsystem: count-min sketch error bounds on
 * adversarial streams, heavy-hitter heap eviction order, schedule
 * cache persistence, traffic-weighted scheduling, the NDJSON
 * protocol codec, crash-safe record appends, and the full
 * ServeSession cache-miss -> tune -> cache-hit round trip with
 * bit-identical replay.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "costmodel/dataset.h"
#include "graph/graph.h"
#include "obs/flight.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "serve/cache.h"
#include "serve/protocol.h"
#include "serve/scheduler.h"
#include "serve/server.h"
#include "serve/traffic.h"
#include "support/rng.h"
#include "tuner/records.h"

namespace felix {
namespace serve {
namespace {

// ---------------------------------------------------------------
// Count-min sketch
// ---------------------------------------------------------------

TEST(CountMinSketch, NeverUnderestimates)
{
    CountMinSketch sketch(4, 64);   // tiny: force collisions
    std::map<uint64_t, uint64_t> exact;
    Rng rng(11);
    for (int i = 0; i < 20000; ++i) {
        uint64_t key = rng.next() % 500;
        sketch.add(key);
        ++exact[key];
    }
    EXPECT_EQ(sketch.total(), 20000u);
    for (const auto &[key, count] : exact)
        EXPECT_GE(sketch.estimate(key), count) << "key " << key;
}

TEST(CountMinSketch, ErrorBoundOnAdversarialStream)
{
    // Adversarial: one heavy hitter drowned in a long tail of
    // distinct keys, all competing for the same counters.
    const int width = 512, depth = 4;
    CountMinSketch sketch(depth, width);
    const uint64_t heavy = 0xfe11f00dull;
    const uint64_t heavyCount = 10000;
    uint64_t total = 0;
    Rng rng(5);
    for (uint64_t i = 0; i < heavyCount; ++i, ++total)
        sketch.add(heavy);
    for (int i = 0; i < 90000; ++i, ++total)
        sketch.add(rng.next());   // ~90k nearly-distinct tail keys
    // Classic guarantee: estimate <= exact + (e / width) * N with
    // probability 1 - e^-depth; conservative update only tightens
    // it. Allow the full bound.
    const double slack = 2.718281828 / width * double(total);
    EXPECT_GE(sketch.estimate(heavy), heavyCount);
    EXPECT_LE(sketch.estimate(heavy),
              heavyCount + uint64_t(slack) + 1);
    EXPECT_NEAR(sketch.share(heavy), 0.1, 0.01);
}

TEST(CountMinSketch, DeterministicAcrossInstances)
{
    CountMinSketch a(4, 256), b(4, 256);
    for (uint64_t key = 0; key < 1000; ++key) {
        a.add(key * 2654435761u, key % 7 + 1);
        b.add(key * 2654435761u, key % 7 + 1);
    }
    for (uint64_t key = 0; key < 1000; ++key)
        EXPECT_EQ(a.estimate(key * 2654435761u),
                  b.estimate(key * 2654435761u));
}

// ---------------------------------------------------------------
// Heavy-hitter heap
// ---------------------------------------------------------------

TEST(HeavyHitters, TracksTopKAndEvictsInOrder)
{
    HeavyHitters heap(3);
    heap.update(1, 10);
    heap.update(2, 20);
    heap.update(3, 30);
    EXPECT_EQ(heap.minCount(), 10u);

    // Not heavier than the minimum: rejected.
    heap.update(4, 10);
    EXPECT_FALSE(heap.contains(4));

    // Heavier: evicts the current minimum (key 1).
    heap.update(5, 15);
    EXPECT_FALSE(heap.contains(1));
    EXPECT_TRUE(heap.contains(5));
    EXPECT_EQ(heap.minCount(), 15u);

    // Growing a tracked key re-sorts without eviction.
    heap.update(5, 50);
    EXPECT_EQ(heap.minCount(), 20u);

    auto items = heap.items();
    ASSERT_EQ(items.size(), 3u);
    EXPECT_EQ(items[0].first, 5u);   // 50
    EXPECT_EQ(items[1].first, 3u);   // 30
    EXPECT_EQ(items[2].first, 2u);   // 20
}

TEST(HeavyHitters, EvictionSequenceUnderRisingStream)
{
    // Keys arrive with strictly rising counts; capacity 2 must
    // always hold the two largest so far.
    HeavyHitters heap(2);
    for (uint64_t key = 1; key <= 100; ++key)
        heap.update(key, key * 10);
    auto items = heap.items();
    ASSERT_EQ(items.size(), 2u);
    EXPECT_EQ(items[0].first, 100u);
    EXPECT_EQ(items[1].first, 99u);
}

TEST(HeavyHitters, ItemsOrderIsDeterministicOnTies)
{
    HeavyHitters heap(4);
    heap.update(42, 7);
    heap.update(7, 7);
    heap.update(99, 7);
    auto items = heap.items();
    ASSERT_EQ(items.size(), 3u);
    EXPECT_EQ(items[0].first, 7u);
    EXPECT_EQ(items[1].first, 42u);
    EXPECT_EQ(items[2].first, 99u);
}

// ---------------------------------------------------------------
// Traffic-weighted scheduler
// ---------------------------------------------------------------

TEST(TrafficScheduler, SkewedTrafficPicksHotTask)
{
    CountMinSketch traffic;
    traffic.add(100, 90);
    traffic.add(200, 10);
    // Equal remaining latency: traffic decides — and the hot task
    // wins even from the higher index (no index bias).
    std::vector<TaskStats> tasks = {{200, 1e-3, 1, 0},
                                    {100, 1e-3, 1, 0}};
    EXPECT_EQ(pickNextTask(tasks, traffic), 1);
    // 9x the traffic loses to 10x the remaining latency: the score
    // is the product, exactly the paper's rule with shares for
    // weights.
    tasks[0].bestLatencySec = 1e-2;
    EXPECT_EQ(pickNextTask(tasks, traffic), 0);
}

TEST(TrafficScheduler, VisitOnceBeforeWeighting)
{
    CountMinSketch traffic;
    traffic.add(100, 1000);
    std::vector<TaskStats> tasks = {{100, 1e-3, 3, 0},
                                    {200, 1e-3, 0, 0}};
    // Task 200 has zero traffic but has never been tuned: the
    // visit-once warm-up picks it first.
    EXPECT_EQ(pickNextTask(tasks, traffic), 1);
}

TEST(TrafficScheduler, StagnationBacksOff)
{
    CountMinSketch traffic;
    traffic.add(100, 60);
    traffic.add(200, 40);
    std::vector<TaskStats> tasks = {{100, 1e-3, 5, 2},
                                    {200, 1e-3, 5, 0}};
    // 0.6 * 0.25 < 0.4: the stagnant hot task yields.
    EXPECT_EQ(pickNextTask(tasks, traffic), 1);
    EXPECT_LT(trafficScore(tasks[0], traffic),
              trafficScore(tasks[1], traffic));
}

TEST(TrafficScheduler, UniformTrafficDegeneratesToAnsorRule)
{
    // With every task equally requested, the policy must reduce to
    // remaining-latency scheduling (the paper's Algorithm 2 rule).
    CountMinSketch traffic;
    traffic.add(1, 10);
    traffic.add(2, 10);
    traffic.add(3, 10);
    std::vector<TaskStats> tasks = {
        {1, 1e-3, 1, 0}, {2, 5e-3, 1, 0}, {3, 2e-3, 1, 0}};
    EXPECT_EQ(pickNextTask(tasks, traffic), 1);
}

// ---------------------------------------------------------------
// Schedule cache
// ---------------------------------------------------------------

tuner::TuneRecord
makeRecord(uint64_t hash, double latency, int sketch = 0)
{
    tuner::TuneRecord record;
    record.taskHash = hash;
    record.taskLabel = "task_" + std::to_string(hash);
    record.sketchIndex = sketch;
    record.scheduleVars = {2, 4, 8};
    record.latencySec = latency;
    record.clockSec = 1.0;
    return record;
}

TEST(ScheduleCache, PutKeepsTheBetterSchedule)
{
    ScheduleCache cache;
    EXPECT_TRUE(cache.put(makeRecord(7, 5e-4)));
    EXPECT_FALSE(cache.put(makeRecord(7, 6e-4)));   // worse: kept out
    EXPECT_TRUE(cache.put(makeRecord(7, 1e-4)));    // better: replaces
    ASSERT_NE(cache.lookup(7), nullptr);
    EXPECT_DOUBLE_EQ(cache.lookup(7)->best.latencySec, 1e-4);
    EXPECT_EQ(cache.lookup(8), nullptr);
}

TEST(ScheduleCache, PersistAndWarmStartRoundTrip)
{
    const char *path = "test_serve_cache_tmp.log";
    std::remove(path);
    {
        ScheduleCache cache;
        cache.put(makeRecord(7, 5e-4));
        cache.put(makeRecord(9, 2e-4, 1));
        EXPECT_EQ(cache.persist(path), 2u);
        // Nothing dirty after a persist: no duplicate writes.
        EXPECT_EQ(cache.persist(path), 0u);
        // An improvement re-dirties only that entry.
        cache.put(makeRecord(7, 1e-4));
        EXPECT_EQ(cache.persist(path), 1u);
    }
    ScheduleCache warmed;
    EXPECT_EQ(warmed.warmStart(path), 2u);
    ASSERT_NE(warmed.lookup(7), nullptr);
    EXPECT_DOUBLE_EQ(warmed.lookup(7)->best.latencySec, 1e-4);
    ASSERT_NE(warmed.lookup(9), nullptr);
    EXPECT_EQ(warmed.lookup(9)->best.sketchIndex, 1);
    // Warm-started entries are clean: nothing is rewritten.
    EXPECT_EQ(warmed.persist(path), 0u);
    std::remove(path);
}

TEST(ScheduleCache, WarmStartMissingFileIsColdStart)
{
    ScheduleCache cache;
    EXPECT_EQ(cache.warmStart("does_not_exist_tmp.log"), 0u);
    EXPECT_EQ(cache.size(), 0u);
}

// ---------------------------------------------------------------
// Records: crash-safe append + corrupt-line accounting
// ---------------------------------------------------------------

TEST(Records, AppendRecordsBatchRoundTrips)
{
    const char *path = "test_serve_records_tmp.log";
    std::remove(path);
    std::vector<tuner::TuneRecord> batch = {makeRecord(1, 1e-4),
                                            makeRecord(2, 2e-4),
                                            makeRecord(3, 3e-4)};
    tuner::appendRecords(path, batch);
    tuner::appendRecords(path, {});   // no-op, creates nothing extra
    auto loaded = tuner::loadRecords(path);
    ASSERT_EQ(loaded.size(), 3u);
    EXPECT_EQ(loaded[1].taskHash, 2u);
    EXPECT_DOUBLE_EQ(loaded[2].latencySec, 3e-4);
    std::remove(path);
}

TEST(Records, CorruptLinesAreCountedAndSkipped)
{
    const char *path = "test_serve_corrupt_tmp.log";
    std::remove(path);
    tuner::appendRecord(path, makeRecord(1, 1e-4));
    {
        std::ofstream os(path, std::ios::app);
        os << "this is not a record\n";
        os << "12 0 nan\n";                       // truncated
        os << "13 0 1e-4 2.0 3 1 2\n";            // missing one var
    }
    tuner::appendRecord(path, makeRecord(2, 2e-4));
    auto &corrupt = obs::MetricsRegistry::instance().counter(
        "records.corrupt_lines");
    const double before = corrupt.value();
    auto loaded = tuner::loadRecords(path);
    EXPECT_EQ(loaded.size(), 2u);
    EXPECT_DOUBLE_EQ(corrupt.value() - before, 3.0);
    std::remove(path);
}

// ---------------------------------------------------------------
// Protocol codec
// ---------------------------------------------------------------

TEST(Protocol, ParsesEveryOp)
{
    auto tune = parseRequest(
        R"({"op":"tune","network":"dcgan","batch":2})");
    ASSERT_TRUE(tune.has_value());
    EXPECT_EQ(tune->op, Op::Tune);
    EXPECT_EQ(tune->network, "dcgan");
    EXPECT_EQ(tune->batch, 2);

    auto rounds = parseRequest(R"({"op":"rounds","n":4})");
    ASSERT_TRUE(rounds.has_value());
    EXPECT_EQ(rounds->op, Op::Rounds);
    EXPECT_EQ(rounds->rounds, 4);

    EXPECT_EQ(parseRequest(R"({"op":"stats"})")->op, Op::Stats);
    EXPECT_EQ(parseRequest(R"({"op":"tasks"})")->op, Op::Tasks);
    EXPECT_EQ(parseRequest(R"({"op":"flush"})")->op, Op::Flush);
    EXPECT_EQ(parseRequest(R"({"op":"shutdown"})")->op,
              Op::Shutdown);
    EXPECT_EQ(parseRequest(R"({"op":"metrics"})")->op, Op::Metrics);
    EXPECT_EQ(parseRequest(R"({"op":"dump"})")->op, Op::Dump);
}

TEST(Protocol, StatsResponseRoundTripsWindowAndQuantiles)
{
    StatsResponse stats;
    stats.requests = 12;
    stats.cacheHits = 9;
    stats.cacheMisses = 3;
    stats.window = {256, 12, 9, 0.75};
    stats.answerLatency = {12, 870.5, 820.0, 1450.0, 2210.0};
    stats.heavyHitters.push_back(
        {0xffffffffffffffffull, 9, 0.75});

    auto parsed = obs::parseJson(stats.toJson());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->stringOr("type", ""), "stats");
    const obs::JsonValue *window = parsed->find("window");
    ASSERT_NE(window, nullptr);
    EXPECT_DOUBLE_EQ(window->numberOr("size", 0), 256.0);
    EXPECT_DOUBLE_EQ(window->numberOr("filled", 0), 12.0);
    EXPECT_DOUBLE_EQ(window->numberOr("hits", 0), 9.0);
    EXPECT_DOUBLE_EQ(window->numberOr("hit_rate", 0), 0.75);
    const obs::JsonValue *latency =
        parsed->find("answer_latency_us");
    ASSERT_NE(latency, nullptr);
    EXPECT_DOUBLE_EQ(latency->numberOr("count", 0), 12.0);
    EXPECT_DOUBLE_EQ(latency->numberOr("mean", 0), 870.5);
    EXPECT_DOUBLE_EQ(latency->numberOr("p50", 0), 820.0);
    EXPECT_DOUBLE_EQ(latency->numberOr("p95", 0), 1450.0);
    EXPECT_DOUBLE_EQ(latency->numberOr("p99", 0), 2210.0);
    // 64-bit hashes survive as decimal strings.
    const obs::JsonValue *hitters = parsed->find("heavy_hitters");
    ASSERT_NE(hitters, nullptr);
    ASSERT_EQ(hitters->asArray().size(), 1u);
    EXPECT_EQ(hitters->asArray()[0].stringOr("hash", ""),
              "18446744073709551615");
}

TEST(Protocol, TasksResponseRoundTrips)
{
    TasksResponse response;
    TaskProgress progress;
    progress.label = "dense \"fc1\"";
    progress.hash = 0x8000000000000001ull;
    progress.bestLatencySec = 4.5e-4;
    progress.rounds = 7;
    progress.stagnantRounds = 2;
    progress.trafficCount = 90;
    progress.trafficShare = 0.9;
    progress.cacheHits = 41;
    response.tasks.push_back(progress);

    auto parsed = obs::parseJson(response.toJson());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->stringOr("type", ""), "tasks");
    EXPECT_DOUBLE_EQ(parsed->numberOr("count", 0), 1.0);
    const obs::JsonValue *tasks = parsed->find("tasks");
    ASSERT_NE(tasks, nullptr);
    ASSERT_EQ(tasks->asArray().size(), 1u);
    const obs::JsonValue &task = tasks->asArray()[0];
    EXPECT_EQ(task.stringOr("label", ""), "dense \"fc1\"");
    EXPECT_EQ(task.stringOr("hash", ""), "9223372036854775809");
    EXPECT_DOUBLE_EQ(task.numberOr("best_latency_sec", 0), 4.5e-4);
    EXPECT_DOUBLE_EQ(task.numberOr("rounds", 0), 7.0);
    EXPECT_DOUBLE_EQ(task.numberOr("stagnant", 0), 2.0);
    EXPECT_DOUBLE_EQ(task.numberOr("traffic_count", 0), 90.0);
    EXPECT_DOUBLE_EQ(task.numberOr("traffic_share", 0), 0.9);
    EXPECT_DOUBLE_EQ(task.numberOr("cache_hits", 0), 41.0);
}

TEST(Protocol, DumpResponseRoundTrips)
{
    DumpResponse response;
    response.total = 20;
    response.droppedCount = 12;
    response.capacity = 8;
    obs::FlightEvent event;
    event.seq = 19;
    event.wallUs = 123456;
    event.kind = obs::FlightKind::CacheMiss;
    event.requestId = 4;
    event.key = 0xdeadbeefull;
    event.value = -1;
    response.events.push_back(event);

    auto parsed = obs::parseJson(response.toJson());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->stringOr("type", ""), "dump");
    EXPECT_DOUBLE_EQ(parsed->numberOr("total", 0), 20.0);
    EXPECT_DOUBLE_EQ(parsed->numberOr("dropped", 0), 12.0);
    EXPECT_DOUBLE_EQ(parsed->numberOr("capacity", 0), 8.0);
    const obs::JsonValue *events = parsed->find("events");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->asArray().size(), 1u);
    const obs::JsonValue &first = events->asArray()[0];
    EXPECT_DOUBLE_EQ(first.numberOr("seq", 0), 19.0);
    EXPECT_DOUBLE_EQ(first.numberOr("t_us", 0), 123456.0);
    EXPECT_EQ(first.stringOr("kind", ""), "cache_miss");
    EXPECT_EQ(first.stringOr("req", ""), "4");
    EXPECT_EQ(first.stringOr("key", ""), "3735928559");
    EXPECT_DOUBLE_EQ(first.numberOr("value", 0), -1.0);
}

TEST(Protocol, RejectsMalformedRequests)
{
    std::string error;
    EXPECT_FALSE(parseRequest("not json", &error).has_value());
    EXPECT_FALSE(parseRequest(R"({"op":"fly"})", &error));
    EXPECT_FALSE(parseRequest(R"({"network":"dcgan"})", &error));
    EXPECT_FALSE(parseRequest(R"({"op":"tune"})", &error));
    EXPECT_FALSE(
        parseRequest(R"({"op":"tune","network":"x","batch":0})",
                     &error));
    EXPECT_FALSE(parseRequest(R"({"op":"rounds","n":0})", &error));
    EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------
// ServeSession
// ---------------------------------------------------------------

/** Small deterministic cost model shared by the session tests. */
const costmodel::CostModel &
testModel()
{
    static const costmodel::CostModel model = [] {
        costmodel::DatasetOptions options;
        options.numSubgraphs = 10;
        options.schedulesPerSketch = 48;
        options.seed = 7;
        auto samples = costmodel::synthesizeDataset(
            sim::deviceConfig(sim::DeviceKind::A5000), options);
        costmodel::MlpConfig config;
        config.layerSizes = {82, 64, 64, 1};
        costmodel::CostModel model(config, 7);
        model.fit(samples, 8, 128, 1.5e-3);
        return model;
    }();
    return model;
}

ServeOptions
fastOptions()
{
    ServeOptions options;
    options.tuner.seed = 3;
    options.tuner.grad.nSeeds = 4;
    options.tuner.grad.nSteps = 48;
    options.tuner.grad.nMeasure = 8;
    return options;
}

std::vector<graph::Task>
denseTasks(const std::string &label, int64_t k)
{
    graph::Graph g(label);
    graph::DenseParams fc;
    fc.n = 64;
    fc.m = 256;
    fc.k = k;
    g.addDense(fc, -1, label);
    return graph::partition(g);
}

TEST(ServeSession, MissTuneHitRoundTrip)
{
    ServeSession session(fastOptions(), testModel());
    auto tasks = denseTasks("fc", 256);
    ASSERT_EQ(tasks.size(), 1u);

    auto miss = session.tune("tiny", tasks);
    EXPECT_EQ(miss.cacheMisses, 1);
    EXPECT_EQ(miss.cacheHits, 0);
    ASSERT_EQ(miss.tasks.size(), 1u);
    EXPECT_FALSE(miss.tasks[0].cached);
    const double untuned = miss.tasks[0].latencySec;

    auto rounds = session.runRounds(2);
    EXPECT_EQ(rounds.ran, 2);
    EXPECT_GT(rounds.measurements, 0);
    EXPECT_GT(rounds.clockSec, 0.0);

    const int measurementsAfterTuning =
        session.graphTuner().totalMeasurements();
    auto hit = session.tune("tiny", tasks);
    EXPECT_EQ(hit.cacheHits, 1);
    EXPECT_EQ(hit.cacheMisses, 0);
    ASSERT_EQ(hit.tasks.size(), 1u);
    EXPECT_TRUE(hit.tasks[0].cached);
    // Served from cache: tuned result, no new measurements.
    EXPECT_LT(hit.tasks[0].latencySec, untuned);
    EXPECT_EQ(session.graphTuner().totalMeasurements(),
              measurementsAfterTuning);

    auto stats = session.stats();
    EXPECT_EQ(stats.cacheHits, 1u);
    EXPECT_EQ(stats.cacheMisses, 1u);
    EXPECT_EQ(stats.tasks, 1u);
    EXPECT_EQ(stats.trafficTotal, 2u);
    ASSERT_FALSE(stats.heavyHitters.empty());
    EXPECT_EQ(stats.heavyHitters[0].count, 2u);
}

TEST(ServeSession, SkewedTrafficShiftsRoundsToHotSubgraph)
{
    ServeSession session(fastOptions(), testModel());
    auto cold = denseTasks("cold_fc", 256);
    auto hot = denseTasks("hot_fc", 224);
    const uint64_t coldHash = cold[0].subgraph.structuralHash();
    const uint64_t hotHash = hot[0].subgraph.structuralHash();
    ASSERT_NE(coldHash, hotHash);

    // Register the cold task FIRST so the hot task wins on traffic,
    // not on index order, then skew the fleet 9:1.
    session.tune("cold", cold);
    session.tune("hot", hot);
    for (int i = 0; i < 8; ++i)
        session.tune("hot", hot);

    EXPECT_GT(session.traffic().share(hotHash), 0.8);
    EXPECT_LT(session.traffic().share(coldHash), 0.2);

    // Round 1 and 2 are the visit-once warm-up; round 3 must go to
    // the hot subgraph even though it registered second.
    auto rounds = session.runRounds(3);
    ASSERT_EQ(rounds.ran, 3);
    EXPECT_EQ(rounds.tunedLabels[2], "hot_fc");
    EXPECT_GT(session.roundsOnTask(hotHash),
              session.roundsOnTask(coldHash));
}

TEST(ServeSession, StdioReplayIsBitIdentical)
{
    const std::string trace =
        "{\"op\":\"tune\",\"network\":\"dcgan\",\"batch\":1}\n"
        "{\"op\":\"rounds\",\"n\":1}\n"
        "{\"op\":\"tune\",\"network\":\"dcgan\",\"batch\":1}\n"
        "{\"op\":\"stats\"}\n"
        "{\"op\":\"shutdown\"}\n";
    auto run = [&]() {
        ServeSession session(fastOptions(), testModel());
        std::istringstream in(trace);
        std::ostringstream out;
        EXPECT_EQ(session.runStdio(in, out), 0);
        EXPECT_TRUE(session.shutdownRequested());
        return out.str();
    };
    const std::string first = run();
    const std::string second = run();
    EXPECT_FALSE(first.empty());
    EXPECT_EQ(first, second);
    // The replay exercises the full protocol surface.
    EXPECT_NE(first.find("\"type\":\"schedules\""),
              std::string::npos);
    EXPECT_NE(first.find("\"cache_hits\":5"), std::string::npos);
    EXPECT_NE(first.find("\"type\":\"ok\""), std::string::npos);
}

TEST(ServeSession, HandleRejectsBadRequestsGracefully)
{
    ServeSession session(fastOptions(), testModel());
    EXPECT_NE(session.handle("garbage").find("\"type\":\"error\""),
              std::string::npos);
    EXPECT_NE(session.handle(R"({"op":"tune","network":"nope"})")
                  .find("unknown network"),
              std::string::npos);
    EXPECT_NE(
        session
            .handle(
                R"({"op":"tune","network":"dcgan","device":"a10g"})")
            .find("\"type\":\"error\""),
        std::string::npos);
    EXPECT_FALSE(session.shutdownRequested());
}

TEST(ServeSession, WindowedHitRateIsDeterministicUnderReplay)
{
    auto run = [] {
        ServeOptions options = fastOptions();
        options.hitWindow = 4;
        ServeSession session(options, testModel());
        auto tasks = denseTasks("fc", 256);
        session.tune("tiny", tasks);   // miss
        for (int i = 0; i < 5; ++i)
            session.tune("tiny", tasks);   // hits
        return session.stats();
    };
    StatsResponse first = run();
    EXPECT_EQ(first.window.size, 4u);
    EXPECT_EQ(first.window.filled, 4u);
    // Six lookups through a window of 4: the initial miss fell out.
    EXPECT_EQ(first.window.hits, 4u);
    EXPECT_DOUBLE_EQ(first.window.hitRate, 1.0);
    // Overall rate still remembers the miss.
    EXPECT_EQ(first.cacheHits, 5u);
    EXPECT_EQ(first.cacheMisses, 1u);
    // Virtual answer latencies populate the quantile summary and
    // replay to the same values.
    EXPECT_EQ(first.answerLatency.count, 6u);
    EXPECT_GT(first.answerLatency.p50Us, 0.0);
    EXPECT_LE(first.answerLatency.p50Us, first.answerLatency.p99Us);
    StatsResponse second = run();
    EXPECT_EQ(second.toJson(), first.toJson());
}

TEST(ServeSession, TasksReportsTuningProgress)
{
    ServeSession session(fastOptions(), testModel());
    auto cold = denseTasks("cold_fc", 256);
    auto hot = denseTasks("hot_fc", 224);
    session.tune("cold", cold);
    for (int i = 0; i < 9; ++i)
        session.tune("hot", hot);
    session.runRounds(3);

    TasksResponse response = session.tasks();
    ASSERT_EQ(response.tasks.size(), 2u);
    const TaskProgress &coldTask = response.tasks[0];
    const TaskProgress &hotTask = response.tasks[1];
    EXPECT_EQ(coldTask.label, "cold_fc");
    EXPECT_EQ(hotTask.label, "hot_fc");
    EXPECT_EQ(hotTask.hash, hot[0].subgraph.structuralHash());
    EXPECT_GT(hotTask.trafficShare, coldTask.trafficShare);
    EXPECT_NEAR(hotTask.trafficShare + coldTask.trafficShare, 1.0,
                1e-9);
    EXPECT_EQ(coldTask.rounds + hotTask.rounds, 3);
    EXPECT_EQ(hotTask.cacheHits, 8u);   // 9 tunes, first missed
    EXPECT_GT(hotTask.bestLatencySec, 0.0);
}

TEST(ServeSession, DumpCarriesCorrelatedFlightEvents)
{
    obs::FlightRecorder::instance().reset(64);
    ServeSession session(fastOptions(), testModel());
    session.handle(
        R"({"op":"tune","network":"dcgan","batch":1})");
    session.handle(
        R"({"op":"tune","network":"dcgan","batch":1})");
    session.handle(R"({"op":"rounds","n":1})");

    DumpResponse dump = session.dump();
    EXPECT_EQ(dump.capacity, 64u);
    EXPECT_EQ(dump.droppedCount, 0u);
    ASSERT_FALSE(dump.events.empty());
    int requests = 0, misses = 0, hits = 0, picks = 0;
    for (const obs::FlightEvent &event : dump.events) {
        switch (event.kind) {
          case obs::FlightKind::Request: ++requests; break;
          case obs::FlightKind::CacheMiss:
              ++misses;
              EXPECT_EQ(event.requestId, 1u);   // first tune
              EXPECT_NE(event.key, 0u);
              break;
          case obs::FlightKind::CacheHit:
              ++hits;
              EXPECT_EQ(event.requestId, 2u);   // second tune
              break;
          case obs::FlightKind::RoundPick:
              ++picks;
              EXPECT_EQ(event.requestId, 3u);
              break;
          default: break;
        }
    }
    EXPECT_EQ(requests, 3);
    EXPECT_GT(misses, 0);
    EXPECT_EQ(hits, misses);   // same network served twice
    EXPECT_EQ(picks, 1);
    // Sequence numbers are strictly increasing, oldest first.
    for (size_t i = 1; i < dump.events.size(); ++i)
        EXPECT_EQ(dump.events[i].seq, dump.events[i - 1].seq + 1);
    // The response serializes and parses.
    EXPECT_TRUE(obs::parseJson(dump.toJson()).has_value());
    obs::FlightRecorder::instance().reset(
        obs::FlightRecorder::kDefaultCapacity);
}

TEST(ServeSession, MetricsAndDumpOpsAnswerOverTheWire)
{
    obs::FlightRecorder::instance().reset(64);
    ServeSession session(fastOptions(), testModel());
    std::string metrics = session.handle(R"({"op":"metrics"})");
    auto parsedMetrics = obs::parseJson(metrics);
    ASSERT_TRUE(parsedMetrics.has_value());
    EXPECT_EQ(parsedMetrics->stringOr("type", ""), "metrics");
    const obs::JsonValue *registry =
        parsedMetrics->find("registry");
    ASSERT_NE(registry, nullptr);
    EXPECT_NE(registry->find("counters"), nullptr);

    std::string dump = session.handle(R"({"op":"dump"})");
    auto parsedDump = obs::parseJson(dump);
    ASSERT_TRUE(parsedDump.has_value());
    EXPECT_EQ(parsedDump->stringOr("type", ""), "dump");
    obs::FlightRecorder::instance().reset(
        obs::FlightRecorder::kDefaultCapacity);
}

TEST(ServeSession, WarmStartAnswersWithoutMeasurements)
{
    const char *path = "test_serve_warm_tmp.log";
    std::remove(path);
    auto tasks = denseTasks("fc", 256);
    {
        ServeOptions options = fastOptions();
        options.recordsPath = path;
        ServeSession session(options, testModel());
        session.tune("tiny", tasks);
        session.runRounds(1);
        EXPECT_GE(session.persist(), 1u);
    }
    {
        ServeOptions options = fastOptions();
        options.recordsPath = path;
        ServeSession session(options, testModel());
        auto hit = session.tune("tiny", tasks);
        EXPECT_EQ(hit.cacheHits, 1);
        EXPECT_EQ(hit.cacheMisses, 0);
        // No task registered, no measurement run: pure cache.
        EXPECT_EQ(session.graphTuner().taskRecords().size(), 0u);
        EXPECT_EQ(session.graphTuner().totalMeasurements(), 0);
    }
    std::remove(path);
}

} // namespace
} // namespace serve
} // namespace felix
