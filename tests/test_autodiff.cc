/**
 * @file
 * Tests for automatic differentiation: symbolic derivatives vs the
 * reverse-mode tape vs central finite differences.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "autodiff/gradcheck.h"
#include "autodiff/symbolic.h"
#include "expr/compiled.h"
#include "expr/expr.h"

namespace felix {
namespace autodiff {
namespace {

using expr::Expr;
using expr::evalExpr;

TEST(Symbolic, PolynomialDerivative)
{
    Expr x = Expr::var("x");
    Expr e = x * x * x;          // d/dx = 3x^2
    Expr d = derivative(e, "x");
    EXPECT_NEAR(evalExpr(d, {{"x", 2.0}}), 12.0, 1e-9);
}

TEST(Symbolic, ProductRule)
{
    Expr x = Expr::var("x"), y = Expr::var("y");
    Expr e = x * y;
    EXPECT_NEAR(evalExpr(derivative(e, "x"), {{"x", 3.0}, {"y", 7.0}}),
                7.0, 1e-12);
    EXPECT_NEAR(evalExpr(derivative(e, "y"), {{"x", 3.0}, {"y", 7.0}}),
                3.0, 1e-12);
}

TEST(Symbolic, ChainThroughExpLog)
{
    Expr x = Expr::var("x");
    Expr e = expr::log(x * x);   // d/dx = 2/x
    EXPECT_NEAR(evalExpr(derivative(e, "x"), {{"x", 4.0}}), 0.5, 1e-9);
}

TEST(Symbolic, ConstantHasZeroDerivative)
{
    Expr d = derivative(Expr::constant(5.0), "x");
    EXPECT_TRUE(d.isConst(0.0));
}

TEST(Symbolic, UnrelatedVariableZero)
{
    Expr e = Expr::var("y") * 3.0;
    EXPECT_TRUE(derivative(e, "x").isConst(0.0));
}

TEST(Symbolic, DivQuotientRule)
{
    Expr x = Expr::var("x");
    Expr e = Expr::constant(1.0) / x;   // d/dx = -1/x^2
    EXPECT_NEAR(evalExpr(derivative(e, "x"), {{"x", 2.0}}), -0.25,
                1e-12);
}

TEST(Symbolic, PowWithVariableExponent)
{
    Expr x = Expr::var("x");
    Expr e = expr::pow(Expr::constant(2.0), x);   // d/dx = 2^x ln 2
    EXPECT_NEAR(evalExpr(derivative(e, "x"), {{"x", 3.0}}),
                8.0 * std::log(2.0), 1e-9);
}

TEST(Symbolic, SqrtDerivative)
{
    Expr x = Expr::var("x");
    Expr e = expr::sqrt(x);
    EXPECT_NEAR(evalExpr(derivative(e, "x"), {{"x", 4.0}}), 0.25,
                1e-12);
}

TEST(Symbolic, AtanDerivative)
{
    Expr x = Expr::var("x");
    Expr e = expr::atan(x);
    EXPECT_NEAR(evalExpr(derivative(e, "x"), {{"x", 1.0}}), 0.5,
                1e-12);
}

TEST(Symbolic, MaxUsesActiveBranch)
{
    Expr x = Expr::var("x"), y = Expr::var("y");
    Expr d = derivative(expr::max(x * 2.0, y), "x");
    EXPECT_NEAR(evalExpr(d, {{"x", 5.0}, {"y", 1.0}}), 2.0, 1e-12);
    EXPECT_NEAR(evalExpr(d, {{"x", 0.1}, {"y", 1.0}}), 0.0, 1e-12);
}

TEST(Symbolic, SelectDifferentiatesBranches)
{
    Expr x = Expr::var("x");
    Expr e = expr::select(expr::gt(x, Expr::constant(0.0)),
                          x * x, -x);
    Expr d = derivative(e, "x");
    EXPECT_NEAR(evalExpr(d, {{"x", 3.0}}), 6.0, 1e-12);
    EXPECT_NEAR(evalExpr(d, {{"x", -3.0}}), -1.0, 1e-12);
}

TEST(Symbolic, SigmoidDerivativePeaksAtZero)
{
    Expr x = Expr::var("x");
    Expr d = derivative(expr::sigmoid(x), "x");
    EXPECT_NEAR(evalExpr(d, {{"x", 0.0}}), 0.5, 1e-12);
    EXPECT_LT(evalExpr(d, {{"x", 5.0}}), 0.01);
}

/** Tape and symbolic derivatives must agree on smooth expressions. */
TEST(TapeVsSymbolic, AgreeOnCompositeExpression)
{
    Expr x = Expr::var("x"), y = Expr::var("y");
    Expr e = expr::log(x * y + 1.0) * expr::exp(y / (x + 2.0)) +
             expr::sqrt(x * x + y * y) + expr::sigmoid(x - y);

    expr::CompiledExprs compiled({e});
    std::vector<double> out, tapeGrads;
    std::vector<double> point = {1.7, 0.9};   // x, y (sorted order)
    compiled.forward(point, out);
    compiled.backward({1.0}, tapeGrads);

    Expr dx = derivative(e, "x");
    Expr dy = derivative(e, "y");
    double sdx = evalExpr(dx, {{"x", 1.7}, {"y", 0.9}});
    double sdy = evalExpr(dy, {{"x", 1.7}, {"y", 0.9}});

    EXPECT_NEAR(tapeGrads[0], sdx, 1e-9);
    EXPECT_NEAR(tapeGrads[1], sdy, 1e-9);
}

TEST(GradCheck, PassesOnSmoothExpression)
{
    Expr x = Expr::var("x"), y = Expr::var("y");
    Expr e = expr::exp(x) * expr::log(y + 2.0) + x * y;
    auto result = checkGradients(e, {{"x", 0.5}, {"y", 1.5}});
    EXPECT_TRUE(result.passed)
        << "worst var " << result.worstVar << " rel err "
        << result.maxRelError;
}

TEST(GradCheck, NumericGradientMatchesKnownValue)
{
    Expr x = Expr::var("x");
    auto grads = numericGradient(x * x, {{"x", 3.0}});
    EXPECT_NEAR(grads.at("x"), 6.0, 1e-6);
}

/** Parameterized sweep: tape gradients match finite differences. */
class TapeGradSweep : public ::testing::TestWithParam<int> {};

TEST_P(TapeGradSweep, MatchesFiniteDifferences)
{
    int seed = GetParam();
    double xv = 0.3 + 0.41 * seed;
    double yv = 0.7 + 0.23 * seed;
    Expr x = Expr::var("x"), y = Expr::var("y");
    // A feature-formula-shaped expression: products, divisions,
    // logs, exps and a smooth sigmoid gate.
    Expr e = (x * y + 3.0) / (x + 1.0) +
             expr::log(x * x * y + 2.0) * expr::sigmoid(y - x) +
             expr::sqrt(1.0 + x * x);
    auto result = checkGradients(e, {{"x", xv}, {"y", yv}});
    EXPECT_TRUE(result.passed)
        << "x=" << xv << " y=" << yv << " rel " << result.maxRelError;
}

INSTANTIATE_TEST_SUITE_P(Sweep, TapeGradSweep, ::testing::Range(0, 10));

} // namespace
} // namespace autodiff
} // namespace felix
