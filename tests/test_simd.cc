/**
 * @file
 * SIMD backend parity matrix (ctest label "simd"): every vector
 * backend compiled in AND supported by this CPU must produce
 * bit-identical results to the scalar fallback on every hot kernel —
 * tape forward/backward at every ragged batch width, the batched MLP
 * forward / input-gradient / training paths, the Adam update, and a
 * full gradient-search round. Also pins the dispatch semantics
 * (availableWidths / setPreferredWidth / simd.width gauge) and
 * carries the FMA-contraction canary that fails if the build ever
 * drops -ffp-contract=off on an FMA-capable target (see the note in
 * the top-level CMakeLists.txt). Re-run under sanitizers with
 * cmake -DFELIX_SANITIZE=... && ctest -L simd.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "costmodel/cost_model.h"
#include "costmodel/dataset.h"
#include "costmodel/mlp.h"
#include "expr/compiled.h"
#include "obs/metrics.h"
#include "optim/adam.h"
#include "optim/search.h"
#include "sim/gpu_model.h"
#include "simd/kernels.h"
#include "support/batch.h"
#include "support/rng.h"
#include "tir/ops.h"

namespace felix {
namespace simd {
namespace {

uint64_t
bitsOf(double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

/** Bit-level equality: distinguishes -0.0/+0.0, equates NaN bits. */
#define EXPECT_BITEQ(a, b)                                            \
    EXPECT_EQ(bitsOf(a), bitsOf(b)) << "values " << (a) << " vs "     \
                                    << (b)

/**
 * Pins one backend for a scope and restores auto-detection on exit,
 * so a failing test cannot leak a forced width into later tests.
 */
class WidthGuard
{
  public:
    explicit WidthGuard(int width)
    {
        ok_ = setPreferredWidth(width);
    }
    ~WidthGuard() { setPreferredWidth(0); }
    bool ok() const { return ok_; }

  private:
    bool ok_;
};

/** Same random expression shape as the test_tape parity suite. */
expr::Expr
randomExpr(Rng &rng, const std::vector<std::string> &vars, int depth)
{
    using expr::Expr;
    if (depth <= 0 || rng.bernoulli(0.25)) {
        if (rng.bernoulli(0.5))
            return Expr::var(vars[rng.index(vars.size())]);
        return Expr::constant(rng.uniform(0.25, 4.0));
    }
    Expr a = randomExpr(rng, vars, depth - 1);
    Expr b = randomExpr(rng, vars, depth - 1);
    switch (rng.index(13)) {
      case 0: return a + b;
      case 1: return a - b;
      case 2: return a * b;
      case 3: return a / (abs(b) + 0.5);
      case 4: return exp(a * 0.25);
      case 5: return log(abs(a) + 0.5);
      case 6: return sqrt(abs(a) + 0.1);
      case 7: return sigmoid(a);
      case 8: return atan(a);
      case 9: return min(a, b);
      case 10: return max(a, b);
      case 11: return select(gt(a, b), a + 1.0, b * 2.0);
      default: return floor(a);
    }
}

// ---------------------------------------------------------------
// Dispatch semantics.
// ---------------------------------------------------------------

TEST(SimdDispatch, AvailableWidthsAscendingAndContainScalar)
{
    std::vector<int> widths = availableWidths();
    ASSERT_FALSE(widths.empty());
    EXPECT_EQ(widths.front(), 1);
    for (size_t i = 1; i < widths.size(); ++i)
        EXPECT_LT(widths[i - 1], widths[i]);
    for (int w : widths)
        EXPECT_TRUE(w == 1 || w == 2 || w == 4 || w == 8)
            << "unexpected backend width " << w;
}

TEST(SimdDispatch, SetPreferredWidthSelectsBackendAndGauge)
{
    WidthGuard restore(0);
    for (int w : availableWidths()) {
        ASSERT_TRUE(setPreferredWidth(w)) << "width " << w;
        EXPECT_EQ(activeWidth(), w);
        EXPECT_EQ(activeKernels().width, w);
        EXPECT_STREQ(activeKernels().name, activeBackendName());
        EXPECT_EQ(obs::MetricsRegistry::instance()
                      .gauge("simd.width")
                      .value(),
                  static_cast<double>(w));
    }
    // Auto-detection restores the widest available backend.
    ASSERT_TRUE(setPreferredWidth(0));
    EXPECT_EQ(activeWidth(), availableWidths().back());
}

TEST(SimdDispatch, RejectsUnavailableWidths)
{
    WidthGuard restore(0);
    const int before = activeWidth();
    for (int bad : {-1, 3, 5, 6, 7, 16, 64}) {
        EXPECT_FALSE(setPreferredWidth(bad)) << "width " << bad;
        EXPECT_EQ(activeWidth(), before);
    }
}

// ---------------------------------------------------------------
// FMA-contraction canary: fl(a*b) + c with two roundings. If any
// backend (or a future compiler-flag change) contracts the mul/add
// pair into a fused multiply-add, the probe returns 2^-54 instead
// of 0 and this test fails — protecting the bit-exactness contract
// between backends (and between FELIX_NATIVE and baseline builds).
// ---------------------------------------------------------------

TEST(SimdFmaCanary, MulAddIsSeparatelyRoundedOnEveryBackend)
{
    const double a = 1.0 + std::ldexp(1.0, -27);
    const double b = a;
    const double c = -(1.0 + std::ldexp(1.0, -26));
    // Reference: force the intermediate product through a rounded
    // double. volatile stops the compiler from contracting this
    // expression regardless of flags.
    volatile double t = a * b;
    const double expect = t + c;
    ASSERT_EQ(expect, 0.0)
        << "reference mul+add was itself contracted";

    WidthGuard restore(0);
    for (int w : availableWidths()) {
        ASSERT_TRUE(setPreferredWidth(w));
        const double got = activeKernels().probeMulAdd(a, b, c);
        EXPECT_BITEQ(got, expect)
            << "backend " << activeBackendName()
            << " fused a*b+c (got 2^" << std::log2(std::abs(got))
            << "); is -ffp-contract=off still set?";
    }
}

// ---------------------------------------------------------------
// Tape forward/backward: every backend vs. the scalar per-point
// engine, at every ragged batch width 1..kBatchLanes.
// ---------------------------------------------------------------

TEST(SimdParity, TapeForwardBackwardEveryBackendEveryWidth)
{
    using expr::CompiledExprs;
    using expr::Expr;
    Rng rng(4242);
    const std::vector<std::string> vars = {"u", "v", "w"};
    constexpr size_t L = kBatchLanes;
    const std::vector<int> widths = availableWidths();
    WidthGuard restore(0);

    for (int trial = 0; trial < 10; ++trial) {
        std::vector<Expr> roots;
        for (int r = 0; r < 4; ++r)
            roots.push_back(randomExpr(rng, vars, 5));
        CompiledExprs compiled(roots, vars);
        const size_t numVars = compiled.numVars();
        const size_t numOutputs = compiled.numOutputs();

        for (size_t width = 1; width <= L; ++width) {
            std::vector<double> inputs(numVars * L, 0.0);
            std::vector<double> outputGrads(numOutputs * L, 0.0);
            std::vector<std::vector<double>> points(width);
            std::vector<std::vector<double>> seeds(width);
            for (size_t l = 0; l < width; ++l) {
                for (size_t v = 0; v < numVars; ++v) {
                    points[l].push_back(rng.uniform(-2.5, 2.5));
                    inputs[v * L + l] = points[l][v];
                }
                for (size_t k = 0; k < numOutputs; ++k) {
                    seeds[l].push_back(rng.uniform(-2.0, 2.0));
                    outputGrads[k * L + l] = seeds[l][k];
                }
            }

            // Scalar per-point reference (engine, not backend).
            expr::EvalState scalarState;
            std::vector<std::vector<double>> refOut(width);
            std::vector<std::vector<double>> refGrad(width);
            for (size_t l = 0; l < width; ++l) {
                compiled.forward(points[l], refOut[l], scalarState);
                compiled.backward(seeds[l], refGrad[l], scalarState);
            }

            for (int w : widths) {
                ASSERT_TRUE(setPreferredWidth(w));
                expr::BatchEvalState batchState;
                std::vector<double> outputs(numOutputs * L);
                std::vector<double> inputGrads(numVars * L);
                compiled.forwardBatch(inputs.data(), width,
                                      outputs.data(), batchState);
                compiled.backwardBatch(outputGrads.data(),
                                       inputGrads.data(),
                                       batchState);
                for (size_t l = 0; l < width; ++l) {
                    for (size_t k = 0; k < numOutputs; ++k)
                        EXPECT_BITEQ(outputs[k * L + l],
                                     refOut[l][k])
                            << "backend " << activeBackendName()
                            << " width " << width << " lane " << l;
                    for (size_t v = 0; v < numVars; ++v)
                        EXPECT_BITEQ(inputGrads[v * L + l],
                                     refGrad[l][v])
                            << "backend " << activeBackendName()
                            << " width " << width << " lane " << l;
                }
            }
        }
    }
}

// ---------------------------------------------------------------
// Batched MLP forward and backward (input gradient): every backend
// vs. the scalar path, at every ragged width (padding lanes >= width
// with copies of lane 0, the engines' own padding convention).
// ---------------------------------------------------------------

TEST(SimdParity, MlpForwardAndInputGradEveryBackendEveryWidth)
{
    Rng rng(1357);
    costmodel::MlpConfig config;
    config.layerSizes = {6, 16, 8, 1};
    costmodel::Mlp mlp(config, rng);
    constexpr size_t L = kBatchLanes;
    const size_t in = 6;
    const std::vector<int> widths = availableWidths();
    WidthGuard restore(0);

    costmodel::MlpScratch scalarScratch;
    for (int trial = 0; trial < 10; ++trial) {
        for (size_t width = 1; width <= L; ++width) {
            std::vector<std::vector<double>> points(width);
            for (size_t l = 0; l < width; ++l)
                for (size_t i = 0; i < in; ++i)
                    points[l].push_back(rng.uniform(-3.0, 3.0));

            std::vector<double> x(in * L);
            for (size_t l = 0; l < L; ++l) {
                const auto &p = points[l < width ? l : 0];
                for (size_t i = 0; i < in; ++i)
                    x[i * L + l] = p[i];
            }

            std::vector<double> refY(width);
            std::vector<std::vector<double>> refDx(width);
            for (size_t l = 0; l < width; ++l)
                refY[l] = mlp.forwardInputGrad(points[l], refDx[l],
                                               scalarScratch);

            for (int w : widths) {
                ASSERT_TRUE(setPreferredWidth(w));
                costmodel::MlpBatchScratch batchScratch;
                double y[kBatchLanes];
                std::vector<double> dx(in * L);
                mlp.forwardInputGradBatch(x.data(), y, dx.data(),
                                          batchScratch);
                double yFwd[kBatchLanes];
                mlp.forwardBatch(x.data(), yFwd, batchScratch);
                for (size_t l = 0; l < width; ++l) {
                    EXPECT_BITEQ(y[l], refY[l])
                        << "backend " << activeBackendName()
                        << " width " << width << " lane " << l;
                    EXPECT_BITEQ(yFwd[l], refY[l]);
                    for (size_t i = 0; i < in; ++i)
                        EXPECT_BITEQ(dx[i * L + l], refDx[l][i])
                            << "backend " << activeBackendName()
                            << " width " << width << " lane " << l;
                }
            }
        }
    }
}

// ---------------------------------------------------------------
// Training: the MLP's Adam parameter update (through trainBatch)
// must walk the identical trajectory on the scalar fallback and the
// widest vector backend.
// ---------------------------------------------------------------

TEST(SimdParity, MlpTrainingTrajectoryScalarVsWidestBitExact)
{
    const std::vector<int> widths = availableWidths();
    costmodel::MlpConfig config;
    config.layerSizes = {5, 16, 8, 1};

    Rng rngA(77), rngB(77), data(31);
    costmodel::Mlp mlpScalar(config, rngA);
    costmodel::Mlp mlpVector(config, rngB);

    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    for (int i = 0; i < 48; ++i) {
        std::vector<double> x(5);
        for (double &v : x)
            v = data.uniform(-2.0, 2.0);
        ys.push_back(data.uniform(-1.0, 1.0));
        xs.push_back(std::move(x));
    }

    WidthGuard restore(0);
    for (int step = 0; step < 10; ++step) {
        ASSERT_TRUE(setPreferredWidth(1));
        const double lossScalar = mlpScalar.trainBatch(xs, ys, 1e-2);
        ASSERT_TRUE(setPreferredWidth(widths.back()));
        const double lossVector = mlpVector.trainBatch(xs, ys, 1e-2);
        EXPECT_BITEQ(lossScalar, lossVector) << "step " << step;
    }
    // Parameters diverged iff predictions diverge.
    setPreferredWidth(0);
    costmodel::MlpScratch scratch;
    for (const auto &x : xs)
        EXPECT_BITEQ(mlpScalar.forward(x, scratch),
                     mlpVector.forward(x, scratch));
}

// ---------------------------------------------------------------
// Standalone Adam: vector body + scalar ragged tail must match the
// scalar backend exactly, on a deliberately awkward vector length.
// ---------------------------------------------------------------

TEST(SimdParity, AdamStepEveryBackendBitExact)
{
    const std::vector<int> widths = availableWidths();
    const size_t n = 1037;   // not a multiple of any backend width
    Rng rng(99);
    std::vector<double> x0(n), grads(n);
    for (size_t i = 0; i < n; ++i)
        x0[i] = rng.uniform(-4.0, 4.0);

    WidthGuard restore(0);
    // Scalar-backend reference trajectory.
    ASSERT_TRUE(setPreferredWidth(1));
    optim::Adam adamRef(n);
    std::vector<double> xRef = x0;
    std::vector<std::vector<double>> gradSeq;
    for (int step = 0; step < 12; ++step) {
        for (size_t i = 0; i < n; ++i)
            grads[i] = rng.uniform(-1.0, 1.0);
        gradSeq.push_back(grads);
        adamRef.step(xRef, grads);
    }

    for (int w : widths) {
        ASSERT_TRUE(setPreferredWidth(w));
        optim::Adam adam(n);
        std::vector<double> x = x0;
        for (const auto &g : gradSeq)
            adam.step(x, g);
        for (size_t i = 0; i < n; ++i)
            EXPECT_BITEQ(x[i], xRef[i])
                << "backend " << activeBackendName() << " index "
                << i;
    }
}

// ---------------------------------------------------------------
// End to end: a full batched gradient-search round — feature tapes,
// cost-model MLP, Adam steps, candidate ranking — on the scalar
// fallback vs. the widest vector backend, bit for bit.
// ---------------------------------------------------------------

TEST(SimdParity, SearchRoundScalarVsWidestBitExact)
{
    const std::vector<int> widths = availableWidths();
    costmodel::DatasetOptions datasetOptions;
    datasetOptions.numSubgraphs = 4;
    datasetOptions.schedulesPerSketch = 16;
    datasetOptions.seed = 3;
    auto samples = costmodel::synthesizeDataset(
        sim::deviceConfig(sim::DeviceKind::A5000), datasetOptions);
    costmodel::MlpConfig config;
    config.layerSizes = {82, 32, 1};

    WidthGuard restore(0);
    ASSERT_TRUE(setPreferredWidth(1));
    costmodel::CostModel modelScalar(config, 11);
    modelScalar.fit(samples, /*epochs=*/2, /*batch=*/64, /*lr=*/1e-3);
    ASSERT_TRUE(setPreferredWidth(widths.back()));
    costmodel::CostModel modelVector(config, 11);
    modelVector.fit(samples, /*epochs=*/2, /*batch=*/64, /*lr=*/1e-3);

    auto subgraph = tir::dense(128, 128, 128, false);
    optim::GradSearchOptions options;
    options.nSeeds = 5;   // deliberately not a multiple of the lanes
    options.nSteps = 25;
    options.nMeasure = 6;
    options.useBatch = true;

    ASSERT_TRUE(setPreferredWidth(1));
    optim::GradientSearch searchScalar(subgraph, options);
    Rng rngA(2025);
    auto resultScalar = searchScalar.round(modelScalar, rngA);

    ASSERT_TRUE(setPreferredWidth(widths.back()));
    optim::GradientSearch searchVector(subgraph, options);
    Rng rngB(2025);
    auto resultVector = searchVector.round(modelVector, rngB);

    ASSERT_EQ(resultScalar.toMeasure.size(),
              resultVector.toMeasure.size());
    for (size_t i = 0; i < resultScalar.toMeasure.size(); ++i) {
        const optim::Candidate &a = resultScalar.toMeasure[i];
        const optim::Candidate &b = resultVector.toMeasure[i];
        EXPECT_EQ(a.sketchIndex, b.sketchIndex);
        ASSERT_EQ(a.x.size(), b.x.size());
        for (size_t v = 0; v < a.x.size(); ++v)
            EXPECT_BITEQ(a.x[v], b.x[v]);
        ASSERT_EQ(a.rawFeatures.size(), b.rawFeatures.size());
        for (size_t k = 0; k < a.rawFeatures.size(); ++k)
            EXPECT_BITEQ(a.rawFeatures[k], b.rawFeatures[k]);
        EXPECT_BITEQ(a.predictedScore, b.predictedScore);
    }
    ASSERT_EQ(resultScalar.trace.visitedScores.size(),
              resultVector.trace.visitedScores.size());
    for (size_t i = 0; i < resultScalar.trace.visitedScores.size();
         ++i)
        EXPECT_BITEQ(resultScalar.trace.visitedScores[i],
                     resultVector.trace.visitedScores[i]);
    EXPECT_EQ(resultScalar.trace.roundingAttempts,
              resultVector.trace.roundingAttempts);
    EXPECT_EQ(resultScalar.trace.roundingInvalid,
              resultVector.trace.roundingInvalid);
}

} // namespace
} // namespace simd
} // namespace felix
