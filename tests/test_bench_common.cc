/**
 * @file
 * Tests for the experiment-harness infrastructure: argument parsing,
 * scaled-vs-full settings, milestone lookup, and formatting.
 */
#include <gtest/gtest.h>

#include "bench/common.h"
#include "support/logging.h"

namespace felix {
namespace bench {
namespace {

BenchOptions
parse(std::vector<const char *> args)
{
    args.insert(args.begin(), "bench");
    return parseArgs(static_cast<int>(args.size()),
                     const_cast<char **>(args.data()));
}

TEST(ParseArgs, Defaults)
{
    auto options = parse({});
    EXPECT_FALSE(options.full);
    EXPECT_EQ(options.budgetSec, 0.0);
    EXPECT_EQ(options.seed, 1u);
    EXPECT_TRUE(options.device.empty());
}

TEST(ParseArgs, AllFlags)
{
    auto options = parse({"--full", "--budget", "1234", "--seed",
                          "42", "--device", "a10g", "--cache-dir",
                          "/tmp/x"});
    EXPECT_TRUE(options.full);
    EXPECT_DOUBLE_EQ(options.budgetSec, 1234.0);
    EXPECT_EQ(options.seed, 42u);
    EXPECT_EQ(options.device, "a10g");
    EXPECT_EQ(options.cacheDir, "/tmp/x");
}

TEST(ParseArgs, UnknownFlagFatal)
{
    EXPECT_THROW(parse({"--bogus"}), FatalError);
}

TEST(Settings, FullScalesSearchParameters)
{
    BenchOptions scaled;
    BenchOptions full;
    full.full = true;
    EXPECT_LT(felixOptions(scaled).grad.nSteps,
              felixOptions(full).grad.nSteps);
    EXPECT_EQ(felixOptions(full).grad.nSteps, 200);    // paper §5
    EXPECT_EQ(ansorOptions(full).evo.population, 2048);
    EXPECT_EQ(ansorOptions(full).evo.nMeasure, 64);
    EXPECT_LT(defaultBudget(scaled), defaultBudget(full));
}

TEST(Settings, BudgetOverrideWins)
{
    BenchOptions options;
    options.budgetSec = 77.0;
    EXPECT_DOUBLE_EQ(defaultBudget(options), 77.0);
}

TEST(Settings, DeviceSelection)
{
    BenchOptions all;
    EXPECT_EQ(selectedDevices(all).size(), 3u);
    BenchOptions one;
    one.device = "xavier-nx";
    auto devices = selectedDevices(one);
    ASSERT_EQ(devices.size(), 1u);
    EXPECT_EQ(devices[0], sim::DeviceKind::XavierNX);
}

TEST(Milestones, TimeToLatencyFindsFirstCrossing)
{
    std::vector<tuner::TimelinePoint> timeline = {
        {0.0, 10.0}, {5.0, 8.0}, {9.0, 3.0}, {20.0, 1.0}};
    EXPECT_DOUBLE_EQ(timeToLatency(timeline, 8.0), 5.0);
    EXPECT_DOUBLE_EQ(timeToLatency(timeline, 2.0), 20.0);
    EXPECT_LT(timeToLatency(timeline, 0.5), 0.0);   // never reached
}

TEST(Format, HelpersRenderExpectedStrings)
{
    EXPECT_EQ(fmtMs(0.00125), "1.250 ms");
    EXPECT_EQ(fmtSpeedup(3.4), "3.4x");
    EXPECT_EQ(fmtSpeedup(-1.0), "-");
}

} // namespace
} // namespace bench
} // namespace felix
