/**
 * @file
 * End-to-end integration smoke of the public API on each evaluated
 * network: extract tasks, construct a tuner (which compiles every
 * symbolic schedule and tape), run one tuning round, and verify the
 * module artifact round-trips. Catches cross-module breakage that
 * unit tests of individual modules cannot.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "core/felix.h"
#include "costmodel/dataset.h"
#include "models/models.h"

namespace felix {
namespace {

const costmodel::CostModel &
smallModel()
{
    static const costmodel::CostModel model = [] {
        costmodel::DatasetOptions options;
        options.numSubgraphs = 8;
        options.schedulesPerSketch = 24;
        options.seed = 23;
        auto samples = costmodel::synthesizeDataset(
            sim::deviceConfig(sim::DeviceKind::A5000), options);
        costmodel::MlpConfig config;
        config.layerSizes = {82, 48, 48, 1};
        costmodel::CostModel model(config, 23);
        model.fit(samples, 6, 128, 1.5e-3);
        return model;
    }();
    return model;
}

class NetworkSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(NetworkSweep, ExtractTuneAndCompile)
{
    const auto spec = models::evaluationNetworks()[GetParam()];
    auto tasks = extractSubgraphs(spec.build(1));
    ASSERT_GT(tasks.size(), 0u) << spec.name;

    OptimizerOptions options;
    options.tuner.grad.nSeeds = 2;
    options.tuner.grad.nSteps = 16;
    options.tuner.grad.nMeasure = 4;
    Optimizer opt(tasks, smallModel(), Device::cuda("a5000"),
                  options);
    double before = opt.tuner().networkLatency();
    EXPECT_TRUE(std::isfinite(before)) << spec.name;

    // A couple of rounds must run cleanly and never regress.
    opt.optimizeAll(2);
    EXPECT_LE(opt.tuner().networkLatency(), before) << spec.name;

    auto module = opt.compileWithBestConfigs();
    EXPECT_EQ(module.configs().size(), tasks.size()) << spec.name;
    EXPECT_GT(module.run(), 0.0);

    std::string path = "integration_tmp_" +
                       std::to_string(GetParam()) + ".cfg";
    module.save(path);
    auto loaded = CompiledModule::load(path);
    ASSERT_TRUE(loaded.has_value()) << spec.name;
    EXPECT_DOUBLE_EQ(loaded->run(), module.run());
    std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    AllNetworks, NetworkSweep, ::testing::Range(0, 6),
    [](const ::testing::TestParamInfo<int> &info) {
        std::string name =
            models::evaluationNetworks()[info.param].name;
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

} // namespace
} // namespace felix
