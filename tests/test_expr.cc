/**
 * @file
 * Unit + property tests for the expression substrate: hash-consing,
 * constant folding, simplification, evaluation, substitution, tape
 * compilation.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "expr/compiled.h"
#include "expr/expr.h"

namespace felix {
namespace expr {
namespace {

TEST(Intern, StructuralSharing)
{
    Expr a = Expr::var("x") + Expr::var("y");
    Expr b = Expr::var("x") + Expr::var("y");
    EXPECT_TRUE(a.same(b));
    EXPECT_EQ(a.get(), b.get());
}

TEST(Intern, CommutativeCanonicalization)
{
    Expr a = Expr::var("x") * Expr::var("y");
    Expr b = Expr::var("y") * Expr::var("x");
    EXPECT_TRUE(a.same(b));
}

TEST(Intern, NonCommutativeNotMerged)
{
    Expr a = Expr::var("x") - Expr::var("y");
    Expr b = Expr::var("y") - Expr::var("x");
    EXPECT_FALSE(a.same(b));
}

TEST(Intern, SameVarNameSameNode)
{
    EXPECT_TRUE(Expr::var("t0").same(Expr::var("t0")));
    EXPECT_FALSE(Expr::var("t0").same(Expr::var("t1")));
}

TEST(Fold, ConstantArithmetic)
{
    Expr e = Expr::constant(2.0) * Expr::constant(3.0) +
             Expr::constant(4.0);
    ASSERT_TRUE(e.isConst());
    EXPECT_DOUBLE_EQ(e.constValue(), 10.0);
}

TEST(Fold, IdentityRules)
{
    Expr x = Expr::var("x");
    EXPECT_TRUE((x + 0.0).same(x));
    EXPECT_TRUE((0.0 + x).same(x));
    EXPECT_TRUE((x * 1.0).same(x));
    EXPECT_TRUE((x / 1.0).same(x));
    EXPECT_TRUE((x - 0.0).same(x));
    EXPECT_TRUE((x * 0.0).isConst(0.0));
    EXPECT_TRUE((x - x).isConst(0.0));
    EXPECT_TRUE((x / x).isConst(1.0));
}

TEST(Fold, PowRules)
{
    Expr x = Expr::var("x");
    EXPECT_TRUE(pow(x, Expr::constant(1.0)).same(x));
    EXPECT_TRUE(pow(x, Expr::constant(0.0)).isConst(1.0));
    EXPECT_TRUE(pow(Expr::constant(1.0), x).isConst(1.0));
}

TEST(Fold, LogExpInverses)
{
    Expr x = Expr::var("x");
    EXPECT_TRUE(log(exp(x)).same(x));
    EXPECT_TRUE(exp(log(x)).same(x));
}

TEST(Fold, MinMaxOfSameOperand)
{
    Expr x = Expr::var("x");
    EXPECT_TRUE(min(x, x).same(x));
    EXPECT_TRUE(max(x, x).same(x));
}

TEST(Fold, SelectConstCondition)
{
    Expr a = Expr::var("a"), b = Expr::var("b");
    EXPECT_TRUE(select(Expr::constant(1.0), a, b).same(a));
    EXPECT_TRUE(select(Expr::constant(0.0), a, b).same(b));
    EXPECT_TRUE(select(lt(a, b), a, a).same(a));
}

TEST(Fold, ComparisonOfIdenticalNodes)
{
    Expr x = Expr::var("x");
    EXPECT_TRUE(lt(x, x).isConst(0.0));
    EXPECT_TRUE(le(x, x).isConst(1.0));
    EXPECT_TRUE(eq(x, x).isConst(1.0));
    EXPECT_TRUE(ne(x, x).isConst(0.0));
}

TEST(Fold, DoubleNegation)
{
    Expr x = Expr::var("x");
    EXPECT_TRUE(neg(neg(x)).same(x));
}

TEST(Eval, BasicArithmetic)
{
    Expr x = Expr::var("x"), y = Expr::var("y");
    Expr e = (x + y) * (x - y);
    EXPECT_DOUBLE_EQ(evalExpr(e, {{"x", 3.0}, {"y", 2.0}}), 5.0);
}

TEST(Eval, TranscendentalOps)
{
    Expr x = Expr::var("x");
    EXPECT_NEAR(evalExpr(log(x), {{"x", M_E}}), 1.0, 1e-12);
    EXPECT_NEAR(evalExpr(exp(x), {{"x", 1.0}}), M_E, 1e-12);
    EXPECT_NEAR(evalExpr(sqrt(x), {{"x", 9.0}}), 3.0, 1e-12);
    EXPECT_NEAR(evalExpr(atan(x), {{"x", 1.0}}), M_PI / 4.0, 1e-12);
}

TEST(Eval, SafeLogIsFinite)
{
    Expr x = Expr::var("x");
    double v = evalExpr(log(x), {{"x", -5.0}});
    EXPECT_TRUE(std::isfinite(v));
}

TEST(Eval, TotalizedDivisionIsFinite)
{
    Expr x = Expr::var("x");
    double v = evalExpr(Expr::constant(2.0) / x, {{"x", 0.0}});
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GT(v, 1e12);
}

TEST(Eval, SelectAndComparisons)
{
    Expr x = Expr::var("x");
    Expr e = select(gt(x, Expr::constant(0.0)), Expr::constant(5.0),
                    Expr::constant(2.0));
    EXPECT_DOUBLE_EQ(evalExpr(e, {{"x", 1.0}}), 5.0);
    EXPECT_DOUBLE_EQ(evalExpr(e, {{"x", -1.0}}), 2.0);
}

TEST(Eval, SigmoidShape)
{
    Expr x = Expr::var("x");
    EXPECT_NEAR(evalExpr(sigmoid(x), {{"x", 0.0}}), 0.5, 1e-12);
    EXPECT_GT(evalExpr(sigmoid(x), {{"x", 10.0}}), 0.99);
    EXPECT_LT(evalExpr(sigmoid(x), {{"x", -10.0}}), 0.01);
}

TEST(Eval, MinMaxFloorAbs)
{
    Expr x = Expr::var("x"), y = Expr::var("y");
    EXPECT_DOUBLE_EQ(evalExpr(min(x, y), {{"x", 2.0}, {"y", 3.0}}), 2.0);
    EXPECT_DOUBLE_EQ(evalExpr(max(x, y), {{"x", 2.0}, {"y", 3.0}}), 3.0);
    EXPECT_DOUBLE_EQ(evalExpr(floor(x), {{"x", 2.7}}), 2.0);
    EXPECT_DOUBLE_EQ(evalExpr(abs(x), {{"x", -2.5}}), 2.5);
}

TEST(Substitute, ReplacesVariables)
{
    Expr x = Expr::var("x"), y = Expr::var("y");
    Expr e = x * y + x;
    Expr sub = substitute(e, {{"x", Expr::constant(2.0)}});
    EXPECT_DOUBLE_EQ(evalExpr(sub, {{"y", 3.0}}), 8.0);
}

TEST(Substitute, RefoldsAfterSubstitution)
{
    Expr x = Expr::var("x");
    Expr e = x * Expr::var("y");
    Expr sub = substitute(e, {{"x", Expr::constant(1.0)}});
    // x*y with x=1 must simplify to y, not stay as (1*y).
    EXPECT_TRUE(sub.same(Expr::var("y")));
}

TEST(Substitute, VarToExpression)
{
    Expr x = Expr::var("x");
    Expr e = log(x);
    Expr sub = substitute(e, {{"x", exp(Expr::var("y"))}});
    // log(exp(y)) collapses to y.
    EXPECT_TRUE(sub.same(Expr::var("y")));
}

TEST(CollectVars, SortedAndDeduplicated)
{
    Expr e = Expr::var("b") + Expr::var("a") * Expr::var("b");
    auto vars = collectVars({e});
    EXPECT_EQ(vars, (std::vector<std::string>{"a", "b"}));
}

TEST(Compiled, SharesCommonSubexpressions)
{
    Expr x = Expr::var("x");
    Expr common = x * x + 1.0;
    Expr a = common * 2.0;
    Expr b = common * 3.0;
    CompiledExprs compiled({a, b});
    // x, x*x, +1, const 1, const 2, const 3, two muls => 8 slots max;
    // without sharing it would be more.
    EXPECT_LE(compiled.tapeSize(), 9u);
    auto out = compiled.eval({2.0});
    EXPECT_DOUBLE_EQ(out[0], 10.0);
    EXPECT_DOUBLE_EQ(out[1], 15.0);
}

TEST(Compiled, MultipleOutputsAndOrder)
{
    Expr x = Expr::var("x"), y = Expr::var("y");
    CompiledExprs compiled({x + y, x * y, x - y});
    auto out = compiled.eval({5.0, 3.0});
    ASSERT_EQ(out.size(), 3u);
    EXPECT_DOUBLE_EQ(out[0], 8.0);
    EXPECT_DOUBLE_EQ(out[1], 15.0);
    EXPECT_DOUBLE_EQ(out[2], 2.0);
}

TEST(Compiled, ExplicitVarOrder)
{
    Expr x = Expr::var("x"), y = Expr::var("y");
    CompiledExprs compiled({x - y}, {"y", "x"});
    auto out = compiled.eval({3.0, 5.0});   // y=3, x=5
    EXPECT_DOUBLE_EQ(out[0], 2.0);
}

TEST(Compiled, BackwardSimpleProduct)
{
    Expr x = Expr::var("x"), y = Expr::var("y");
    CompiledExprs compiled({x * y});
    std::vector<double> out, grads;
    compiled.forward({3.0, 4.0}, out);
    compiled.backward({1.0}, grads);
    ASSERT_EQ(grads.size(), 2u);
    EXPECT_DOUBLE_EQ(grads[0], 4.0);   // d/dx
    EXPECT_DOUBLE_EQ(grads[1], 3.0);   // d/dy
}

TEST(Compiled, BackwardAccumulatesAcrossOutputs)
{
    Expr x = Expr::var("x");
    CompiledExprs compiled({x * x, x * 3.0});
    std::vector<double> out, grads;
    compiled.forward({2.0}, out);
    compiled.backward({1.0, 2.0}, grads);
    // d(x^2)/dx * 1 + d(3x)/dx * 2 = 4 + 6 = 10.
    EXPECT_DOUBLE_EQ(grads[0], 10.0);
}

TEST(Compiled, BackwardSubgradientMax)
{
    Expr x = Expr::var("x"), y = Expr::var("y");
    CompiledExprs compiled({max(x, y)});
    std::vector<double> out, grads;
    compiled.forward({5.0, 2.0}, out);
    compiled.backward({1.0}, grads);
    EXPECT_DOUBLE_EQ(grads[0], 1.0);
    EXPECT_DOUBLE_EQ(grads[1], 0.0);
}

TEST(Compiled, ReusableAcrossCalls)
{
    Expr x = Expr::var("x");
    CompiledExprs compiled({x * x});
    EXPECT_DOUBLE_EQ(compiled.eval({2.0})[0], 4.0);
    EXPECT_DOUBLE_EQ(compiled.eval({3.0})[0], 9.0);
    EXPECT_DOUBLE_EQ(compiled.eval({4.0})[0], 16.0);
}

TEST(Helpers, IntConstAndDoubleOperators)
{
    Expr x = Expr::var("x");
    EXPECT_TRUE(Expr::intConst(42).isConst(42.0));
    EXPECT_DOUBLE_EQ(evalExpr(2.0 + x, {{"x", 3.0}}), 5.0);
    EXPECT_DOUBLE_EQ(evalExpr(x - 1.0, {{"x", 3.0}}), 2.0);
    EXPECT_DOUBLE_EQ(evalExpr(10.0 / x, {{"x", 4.0}}), 2.5);
    EXPECT_DOUBLE_EQ(evalExpr(-x, {{"x", 4.0}}), -4.0);
}

TEST(Helpers, CountNodesSharesSubtrees)
{
    Expr x = Expr::var("x");
    Expr shared = x * x;
    // shared appears twice but the DAG holds it once.
    size_t count = countNodes({shared + shared});
    EXPECT_LE(count, 3u);   // x, x*x, (x*x)+(x*x)
}

TEST(Helpers, CollectVarsMultipleRoots)
{
    auto vars = collectVars({Expr::var("c") + 1.0,
                             Expr::var("a") * Expr::var("b")});
    EXPECT_EQ(vars, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Printer, RendersReadableForms)
{
    Expr x = Expr::var("x");
    EXPECT_EQ((x + 1.0).str(), "(x + 1)");
    EXPECT_EQ(min(x, Expr::constant(2.0)).str(), "min(x, 2)");
    EXPECT_EQ(Expr::constant(2.5).str(), "2.5");
}

// Property-style sweep: folding never changes evaluation results.
class FoldProperty : public ::testing::TestWithParam<int> {};

TEST_P(FoldProperty, SimplificationPreservesSemantics)
{
    int seed = GetParam();
    double xv = 0.5 + seed * 0.37;
    double yv = 1.25 + seed * 0.11;
    Expr x = Expr::var("x"), y = Expr::var("y");

    // Expressions built two algebraically equal ways.
    Expr e1 = (x + y) * (x + y);
    Expr e2 = x * x + 2.0 * x * y + y * y;
    double v1 = evalExpr(e1, {{"x", xv}, {"y", yv}});
    double v2 = evalExpr(e2, {{"x", xv}, {"y", yv}});
    EXPECT_NEAR(v1, v2, 1e-9 * std::max(1.0, std::abs(v1)));

    Expr m1 = min(x, y) + max(x, y);
    Expr m2 = x + y;
    EXPECT_NEAR(evalExpr(m1, {{"x", xv}, {"y", yv}}),
                evalExpr(m2, {{"x", xv}, {"y", yv}}), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FoldProperty, ::testing::Range(0, 12));

} // namespace
} // namespace expr
} // namespace felix
