# Observability smoke test (ctest): tune a tiny network with
# telemetry enabled and validate the emitted files.
#
# Invoked as
#   cmake -DFELIX_TUNE=... -DTRACE_SUMMARY=... -DWORK_DIR=...
#         -DCACHE_DIR=... -P obs_smoke.cmake
#
# Steps:
#   1. felix-tune --network dcgan --budget 10 with --trace-out and
#      --metrics-out (a couple of tuning rounds on one CPU core).
#   2. Check both files exist and are non-empty.
#   3. felix-trace-summary TRACE METRICS — it exits non-zero when
#      either file is not well-formed JSON / JSONL, so it doubles as
#      the format validator.
#   4. Check the JSONL contains at least one per-round record and the
#      final metrics snapshot.

foreach(var FELIX_TUNE TRACE_SUMMARY WORK_DIR CACHE_DIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "obs_smoke: missing -D${var}")
    endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(trace_file "${WORK_DIR}/trace.json")
set(metrics_file "${WORK_DIR}/metrics.jsonl")

execute_process(
    COMMAND "${FELIX_TUNE}"
        --network dcgan --device a5000 --budget 10 --seed 3
        --cache-dir "${CACHE_DIR}"
        --trace-out "${trace_file}"
        --metrics-out "${metrics_file}"
    RESULT_VARIABLE tune_rc
    OUTPUT_VARIABLE tune_out
    ERROR_VARIABLE tune_err)
if(NOT tune_rc EQUAL 0)
    message(FATAL_ERROR
        "felix-tune failed (${tune_rc}):\n${tune_out}\n${tune_err}")
endif()

foreach(f "${trace_file}" "${metrics_file}")
    if(NOT EXISTS "${f}")
        message(FATAL_ERROR "telemetry file not written: ${f}")
    endif()
    file(SIZE "${f}" fsize)
    if(fsize EQUAL 0)
        message(FATAL_ERROR "telemetry file empty: ${f}")
    endif()
endforeach()

# felix-trace-summary parses both files with the strict in-repo JSON
# parser and exits non-zero on any malformed line.
execute_process(
    COMMAND "${TRACE_SUMMARY}" "${trace_file}" "${metrics_file}"
    RESULT_VARIABLE summary_rc
    OUTPUT_VARIABLE summary_out
    ERROR_VARIABLE summary_err)
if(NOT summary_rc EQUAL 0)
    message(FATAL_ERROR
        "felix-trace-summary rejected the telemetry "
        "(${summary_rc}):\n${summary_out}\n${summary_err}")
endif()
message(STATUS "felix-trace-summary output:\n${summary_out}")

file(STRINGS "${metrics_file}" metric_lines)
set(round_lines 0)
set(snapshot_lines 0)
foreach(line IN LISTS metric_lines)
    if(line MATCHES "\"type\":[ ]*\"round\"")
        math(EXPR round_lines "${round_lines} + 1")
    elseif(line MATCHES "\"type\":[ ]*\"metrics\"")
        math(EXPR snapshot_lines "${snapshot_lines} + 1")
    endif()
endforeach()
if(round_lines LESS 1)
    message(FATAL_ERROR "no per-round records in ${metrics_file}")
endif()
if(NOT snapshot_lines EQUAL 1)
    message(FATAL_ERROR
        "expected exactly one metrics snapshot in ${metrics_file}, "
        "found ${snapshot_lines}")
endif()

# Round records must carry the instrumented fields.
foreach(key seeds violation_rate candidates finetune_loss wall_ms)
    if(NOT metric_lines MATCHES "\"${key}\"")
        message(FATAL_ERROR
            "round records missing \"${key}\" in ${metrics_file}")
    endif()
endforeach()

# The trace must be a Chrome trace_event document with spans from
# the tuner and search layers.
file(READ "${trace_file}" trace_text)
foreach(needle "traceEvents" "tuner.round" "search.round")
    if(NOT trace_text MATCHES "${needle}")
        message(FATAL_ERROR
            "trace missing \"${needle}\" in ${trace_file}")
    endif()
endforeach()

message(STATUS
    "obs smoke OK: ${round_lines} round records + metrics snapshot")
