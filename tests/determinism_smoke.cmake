# Determinism smoke test (ctest): one tuning session run three
# times — --jobs 1, --jobs 4, and --jobs 4 --no-jit — must be
# bit-identical in everything except wall-clock time. The --no-jit
# run doubles as the end-to-end fallback check for the copy-and-patch
# tape JIT: the batched interpreter must reproduce the JIT'd descent
# byte for byte (docs/tape_engine.md).
#
# Invoked as
#   cmake -DFELIX_TUNE=... -DWORK_DIR=... -DCACHE_DIR=...
#         -P determinism_smoke.cmake
#
# Steps:
#   1. felix-tune --network dcgan --budget 10 with --jobs 1, saving
#      the best schedules (--out) and round records (--metrics-out).
#   2. Same command with --jobs 4, and again with --jobs 4 --no-jit.
#   3. The schedule files must compare byte-equal.
#   4. The round-record JSONL must compare equal after normalizing
#      the only wall-clock-dependent parts: every "wall_ms" value and
#      the final metrics snapshot line (its *_ms timer counters and
#      threads.pool_size gauge legitimately differ across pool sizes).

foreach(var FELIX_TUNE WORK_DIR CACHE_DIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "determinism_smoke: missing -D${var}")
    endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

function(run_tune suffix)
    execute_process(
        COMMAND "${FELIX_TUNE}"
            --network dcgan --device a5000 --budget 10 --seed 3
            ${ARGN}
            --cache-dir "${CACHE_DIR}"
            --out "${WORK_DIR}/best_${suffix}.cfg"
            --metrics-out "${WORK_DIR}/metrics_${suffix}.jsonl"
        RESULT_VARIABLE rc
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
            "felix-tune ${suffix} failed (${rc}):\n${out}\n${err}")
    endif()
endfunction()

run_tune(j1 --jobs 1)
run_tune(j4 --jobs 4)
run_tune(j4nojit --jobs 4 --no-jit)

# Best schedules must match byte for byte.
foreach(other j4 j4nojit)
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E compare_files
            "${WORK_DIR}/best_j1.cfg" "${WORK_DIR}/best_${other}.cfg"
        RESULT_VARIABLE cfg_diff)
    if(NOT cfg_diff EQUAL 0)
        message(FATAL_ERROR
            "best schedules differ between j1 and ${other} "
            "(${WORK_DIR}/best_j1.cfg vs best_${other}.cfg)")
    endif()
endforeach()

# Round records must match after stripping wall-clock fields.
function(normalized_metrics path out_var)
    file(READ "${path}" text)
    string(REGEX REPLACE "\"wall_ms\":[ ]*[0-9.eE+-]+" "\"wall_ms\":0"
        text "${text}")
    string(REGEX REPLACE "[^\n]*\"type\":[ ]*\"metrics\"[^\n]*\n?" ""
        text "${text}")
    set(${out_var} "${text}" PARENT_SCOPE)
endfunction()

normalized_metrics("${WORK_DIR}/metrics_j1.jsonl" metrics1)
foreach(other j4 j4nojit)
    normalized_metrics("${WORK_DIR}/metrics_${other}.jsonl" metricsB)
    if(NOT metrics1 STREQUAL metricsB)
        message(FATAL_ERROR
            "round records differ between j1 and ${other} "
            "(${WORK_DIR}/metrics_j1.jsonl vs "
            "metrics_${other}.jsonl)")
    endif()
endforeach()
if(metrics1 STREQUAL "")
    message(FATAL_ERROR "no round records emitted")
endif()

message(STATUS
    "determinism smoke OK: --jobs 1 == --jobs 4 == --no-jit")
