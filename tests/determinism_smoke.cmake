# Determinism smoke test (ctest): one tuning session run twice, at
# --jobs 1 and --jobs 4, must be bit-identical in everything except
# wall-clock time.
#
# Invoked as
#   cmake -DFELIX_TUNE=... -DWORK_DIR=... -DCACHE_DIR=...
#         -P determinism_smoke.cmake
#
# Steps:
#   1. felix-tune --network dcgan --budget 10 with --jobs 1, saving
#      the best schedules (--out) and round records (--metrics-out).
#   2. Same command with --jobs 4.
#   3. The schedule files must compare byte-equal.
#   4. The round-record JSONL must compare equal after normalizing
#      the only wall-clock-dependent parts: every "wall_ms" value and
#      the final metrics snapshot line (its *_ms timer counters and
#      threads.pool_size gauge legitimately differ across pool sizes).

foreach(var FELIX_TUNE WORK_DIR CACHE_DIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "determinism_smoke: missing -D${var}")
    endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

function(run_tune jobs)
    execute_process(
        COMMAND "${FELIX_TUNE}"
            --network dcgan --device a5000 --budget 10 --seed 3
            --jobs ${jobs}
            --cache-dir "${CACHE_DIR}"
            --out "${WORK_DIR}/best_j${jobs}.cfg"
            --metrics-out "${WORK_DIR}/metrics_j${jobs}.jsonl"
        RESULT_VARIABLE rc
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
            "felix-tune --jobs ${jobs} failed (${rc}):\n${out}\n${err}")
    endif()
endfunction()

run_tune(1)
run_tune(4)

# Best schedules must match byte for byte.
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
        "${WORK_DIR}/best_j1.cfg" "${WORK_DIR}/best_j4.cfg"
    RESULT_VARIABLE cfg_diff)
if(NOT cfg_diff EQUAL 0)
    message(FATAL_ERROR
        "best schedules differ between --jobs 1 and --jobs 4 "
        "(${WORK_DIR}/best_j1.cfg vs best_j4.cfg)")
endif()

# Round records must match after stripping wall-clock fields.
function(normalized_metrics path out_var)
    file(READ "${path}" text)
    string(REGEX REPLACE "\"wall_ms\":[ ]*[0-9.eE+-]+" "\"wall_ms\":0"
        text "${text}")
    string(REGEX REPLACE "[^\n]*\"type\":[ ]*\"metrics\"[^\n]*\n?" ""
        text "${text}")
    set(${out_var} "${text}" PARENT_SCOPE)
endfunction()

normalized_metrics("${WORK_DIR}/metrics_j1.jsonl" metrics1)
normalized_metrics("${WORK_DIR}/metrics_j4.jsonl" metrics4)
if(NOT metrics1 STREQUAL metrics4)
    message(FATAL_ERROR
        "round records differ between --jobs 1 and --jobs 4 "
        "(${WORK_DIR}/metrics_j1.jsonl vs metrics_j4.jsonl)")
endif()
if(metrics1 STREQUAL "")
    message(FATAL_ERROR "no round records emitted")
endif()

message(STATUS "determinism smoke OK: --jobs 1 == --jobs 4")
