# Sharded-tuning smoke test (ctest label "shard"): the end-to-end
# determinism contract of docs/distributed.md, exercised through real
# felix-tune processes.
#
#   1. Reference: a --shards 1 run of dcgan (5 tasks, 2 rounds each),
#      merged.
#   2. --shards 2 as two separate processes; shard 1 is SIGKILLed by
#      the --kill-at-round hook at the worst possible instant (round
#      artifacts appended, checkpoint not yet written), then resumed
#      with --resume. Merged output must be byte-identical to the
#      reference across all five merged.* artifacts.
#   3. --shards 4 as four processes, merged: byte-identical again.
#
# Invoked as
#   cmake -DFELIX_TUNE=... -DWORK_DIR=... -DCACHE_DIR=...
#         -P shard_smoke.cmake

foreach(var FELIX_TUNE WORK_DIR CACHE_DIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "shard_smoke: missing -D${var}")
    endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(network dcgan)
set(rounds 2)

function(run_shard label dir shards shard_id expect_ok)
    execute_process(
        COMMAND "${FELIX_TUNE}" --network ${network}
            --cache-dir "${CACHE_DIR}"
            --shards ${shards} --shard-id ${shard_id}
            --shard-dir "${dir}" --rounds-per-task ${rounds} ${ARGN}
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err
        RESULT_VARIABLE rc)
    if(expect_ok AND NOT rc EQUAL 0)
        message(FATAL_ERROR
            "shard_smoke ${label}: exit ${rc}\n${out}\n${err}")
    endif()
    if(NOT expect_ok AND rc EQUAL 0)
        message(FATAL_ERROR
            "shard_smoke ${label}: expected the kill hook to "
            "terminate the process, but it exited 0\n${out}")
    endif()
endfunction()

function(run_merge label dir)
    execute_process(
        COMMAND "${FELIX_TUNE}" --merge --shard-dir "${dir}"
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
            "shard_smoke merge ${label}: exit ${rc}\n${out}\n${err}")
    endif()
endfunction()

function(compare_merged label a b)
    foreach(artifact merged.records merged.rounds.jsonl merged.best
            merged.cfg merged.metrics)
        execute_process(
            COMMAND "${CMAKE_COMMAND}" -E compare_files
                "${a}/${artifact}" "${b}/${artifact}"
            RESULT_VARIABLE rc)
        if(NOT rc EQUAL 0)
            message(FATAL_ERROR
                "shard_smoke ${label}: ${artifact} differs between "
                "${a} and ${b}")
        endif()
    endforeach()
endfunction()

# 1. Reference run: one shard owns everything.
set(ref "${WORK_DIR}/shards1")
run_shard("reference" "${ref}" 1 0 TRUE)
run_merge("reference" "${ref}")

# 2. Two shards; shard 1 is SIGKILLed mid-run at the worst crash
# point, then resumed. The resumed + merged output must be
# byte-identical to the reference.
set(two "${WORK_DIR}/shards2")
run_shard("2-way shard 0" "${two}" 2 0 TRUE)
run_shard("2-way shard 1 (killed)" "${two}" 2 1 FALSE
          --kill-at-round 1)
run_shard("2-way shard 1 (resumed)" "${two}" 2 1 TRUE --resume)
run_merge("2-way" "${two}")
compare_merged("kill+resume vs reference" "${ref}" "${two}")

# 3. Four shards, uninterrupted: shard-count invariance.
set(four "${WORK_DIR}/shards4")
foreach(i RANGE 3)
    run_shard("4-way shard ${i}" "${four}" 4 ${i} TRUE)
endforeach()
run_merge("4-way" "${four}")
compare_merged("--shards 4 vs --shards 1" "${ref}" "${four}")

message(STATUS
    "shard smoke OK: kill+resume and --shards {2,4} all "
    "byte-identical to --shards 1")
