/**
 * @file
 * Tests of the deterministic parallel runtime (support/parallel.h):
 * pool correctness, exception propagation, nested loops, concurrent
 * expression interning, and the end-to-end determinism contract —
 * a GraphTuner run is bit-identical for --jobs 1 and --jobs 4.
 *
 * Registered under the ctest label "concurrency" so the suite can be
 * re-run under ThreadSanitizer (cmake -DFELIX_SANITIZE=thread,
 * ctest -L concurrency).
 */
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "costmodel/dataset.h"
#include "expr/expr.h"
#include "graph/graph.h"
#include "support/parallel.h"
#include "support/rng.h"
#include "tir/ops.h"
#include "tuner/tuner.h"

namespace felix {
namespace {

/** Restores the global pool size on scope exit so tests that resize
 *  it cannot leak a multi-threaded pool into unrelated tests. */
struct PoolGuard
{
    ~PoolGuard() { setGlobalJobs(1); }
};

TEST(ThreadPool, ExecutesEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.jobs(), 4);
    constexpr size_t kN = 10000;
    std::vector<std::atomic<int>> hits(kN);
    for (auto &h : hits)
        h.store(0);
    pool.run(
        kN,
        [&](size_t i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
        },
        "test.pool");
    for (size_t i = 0; i < kN; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ReusableAcrossManyLoops)
{
    ThreadPool pool(3);
    for (int round = 0; round < 50; ++round) {
        std::vector<int> out(round + 1, 0);
        pool.run(
            out.size(), [&](size_t i) { out[i] = static_cast<int>(i); },
            "test.pool");
        for (size_t i = 0; i < out.size(); ++i)
            EXPECT_EQ(out[i], static_cast<int>(i));
    }
}

TEST(ThreadPool, PropagatesFirstException)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.run(
                     100,
                     [&](size_t i) {
                         if (i == 37)
                             throw std::runtime_error("item 37");
                     },
                     "test.pool"),
                 std::runtime_error);
    // The pool must stay usable after an exceptional loop.
    std::atomic<int> count{0};
    pool.run(
        10, [&](size_t) { count.fetch_add(1); }, "test.pool");
    EXPECT_EQ(count.load(), 10);
}

TEST(ParallelFor, SlotWritesMatchSerialLoop)
{
    PoolGuard guard;
    auto compute = [](std::vector<double> &out) {
        parallelFor("test.slots", out.size(), [&](size_t i) {
            out[i] = static_cast<double>(i) * 1.5 + 1.0;
        });
    };
    std::vector<double> serial(777), parallel(777);
    setGlobalJobs(1);
    compute(serial);
    setGlobalJobs(4);
    EXPECT_EQ(globalJobs(), 4);
    compute(parallel);
    EXPECT_EQ(serial, parallel);
}

TEST(ParallelFor, NestedLoopRunsInline)
{
    PoolGuard guard;
    setGlobalJobs(4);
    std::vector<std::vector<int>> out(8);
    parallelFor("test.outer", out.size(), [&](size_t i) {
        out[i].assign(16, 0);
        parallelFor("test.inner", out[i].size(), [&](size_t j) {
            out[i][j] = static_cast<int>(i * 100 + j);
        });
    });
    for (size_t i = 0; i < out.size(); ++i)
        for (size_t j = 0; j < out[i].size(); ++j)
            EXPECT_EQ(out[i][j], static_cast<int>(i * 100 + j));
}

TEST(ParallelForChunks, ChunkBoundariesIgnorePoolSize)
{
    PoolGuard guard;
    auto boundaries = [](size_t n, size_t chunk) {
        std::vector<std::pair<size_t, size_t>> ranges(
            (n + chunk - 1) / chunk);
        parallelForChunks("test.chunks", n, chunk,
                          [&](size_t begin, size_t end) {
                              ranges[begin / chunk] = {begin, end};
                          });
        return ranges;
    };
    setGlobalJobs(1);
    auto serial = boundaries(103, 16);
    setGlobalJobs(4);
    auto parallel = boundaries(103, 16);
    EXPECT_EQ(serial, parallel);
    ASSERT_EQ(serial.size(), 7u);
    EXPECT_EQ(serial.front(), (std::pair<size_t, size_t>{0, 16}));
    EXPECT_EQ(serial.back(), (std::pair<size_t, size_t>{96, 103}));
}

TEST(Interner, ConcurrentConstructionYieldsCanonicalNodes)
{
    PoolGuard guard;
    setGlobalJobs(4);
    // Build the same expression from every worker at once: hash
    // consing must hand all of them the identical node, and repeated
    // rounds must not grow the intern table (no duplicate inserts
    // racing past the shard locks).
    auto build = [](size_t salt) {
        expr::Expr x = expr::Expr::var("ptx");
        expr::Expr y = expr::Expr::var("pty");
        expr::Expr e = expr::min(x * y + 2.0, expr::max(x, y));
        return expr::log(e + static_cast<double>(salt % 3));
    };
    std::vector<expr::Expr> exprs(64);
    parallelFor("test.intern", exprs.size(),
                [&](size_t i) { exprs[i] = build(i); });
    const size_t tableAfterFirst = expr::internTableSize();
    for (size_t i = 0; i < exprs.size(); ++i)
        EXPECT_TRUE(exprs[i].same(exprs[i % 3]))
            << "expr " << i << " not canonical";
    std::vector<expr::Expr> again(64);
    parallelFor("test.intern", again.size(),
                [&](size_t i) { again[i] = build(i); });
    EXPECT_EQ(expr::internTableSize(), tableAfterFirst);
    for (size_t i = 0; i < again.size(); ++i)
        EXPECT_TRUE(again[i].same(exprs[i]));
}

TEST(Interner, CommutativeCanonicalizationIsOrderFree)
{
    PoolGuard guard;
    setGlobalJobs(4);
    // a + b and b + a must intern to one node even when the two
    // orders are first seen concurrently on different threads.
    std::vector<expr::Expr> sums(32);
    parallelFor("test.commute", sums.size(), [&](size_t i) {
        expr::Expr a = expr::Expr::var("ca") * 3.0;
        expr::Expr b = expr::Expr::var("cb") + 1.0;
        sums[i] = (i % 2 == 0) ? (a + b) : (b + a);
    });
    for (size_t i = 1; i < sums.size(); ++i)
        EXPECT_TRUE(sums[i].same(sums[0]));
}

/** Small deterministic cost model for the parity test. */
costmodel::CostModel
parityModel()
{
    costmodel::DatasetOptions options;
    options.numSubgraphs = 6;
    options.schedulesPerSketch = 24;
    options.seed = 17;
    auto samples = costmodel::synthesizeDataset(
        sim::deviceConfig(sim::DeviceKind::A5000), options);
    costmodel::MlpConfig config;
    config.layerSizes = {82, 32, 32, 1};
    costmodel::CostModel model(config, 17);
    model.fit(samples, 4, 128, 1.5e-3);
    return model;
}

std::vector<graph::Task>
parityTasks()
{
    graph::Graph g("parity");
    tir::Conv2dConfig conv;
    conv.c = 32;
    conv.h = conv.w = 28;
    conv.k = 64;
    int x = g.addConv2d(conv, -1, "conv");
    graph::DenseParams fc;
    fc.n = 64;
    fc.m = 256;
    fc.k = 256;
    g.addDense(fc, x, "fc");
    return graph::partition(g);
}

struct TuneOutcome
{
    double networkLatency = 0.0;
    double clock = 0.0;
    int measurements = 0;
    std::vector<double> bestLatencies;
    std::vector<std::vector<double>> bestSchedules;
    std::vector<tuner::TimelinePoint> timeline;
};

TuneOutcome
runTuner(const costmodel::CostModel &model, int jobs)
{
    tuner::TunerOptions options;
    options.strategy = tuner::StrategyKind::FelixGradient;
    options.seed = 7;
    options.numThreads = jobs;
    options.grad.nSeeds = 4;
    options.grad.nSteps = 32;
    options.grad.nMeasure = 6;
    tuner::GraphTuner tuner(parityTasks(), model,
                            sim::DeviceKind::A5000, options);
    tuner.tuneRounds(3);
    TuneOutcome out;
    out.networkLatency = tuner.networkLatency();
    out.clock = tuner.clockNow();
    out.measurements = tuner.totalMeasurements();
    for (const auto &record : tuner.taskRecords()) {
        out.bestLatencies.push_back(record.bestLatencySec);
        out.bestSchedules.push_back(record.bestCandidate.x);
    }
    out.timeline = tuner.timeline();
    return out;
}

TEST(Determinism, TunerIsBitIdenticalAcrossJobCounts)
{
    PoolGuard guard;
    // Build the model once (its synthesis is itself parallel, but we
    // want to isolate the tuner here) and run the same tuning session
    // at pool sizes 1 and 4: every number must match exactly.
    setGlobalJobs(1);
    costmodel::CostModel model = parityModel();
    TuneOutcome one = runTuner(model, 1);
    TuneOutcome four = runTuner(model, 4);
    EXPECT_EQ(globalJobs(), 4);

    EXPECT_DOUBLE_EQ(one.networkLatency, four.networkLatency);
    EXPECT_DOUBLE_EQ(one.clock, four.clock);
    EXPECT_EQ(one.measurements, four.measurements);
    ASSERT_EQ(one.bestLatencies.size(), four.bestLatencies.size());
    for (size_t i = 0; i < one.bestLatencies.size(); ++i) {
        EXPECT_DOUBLE_EQ(one.bestLatencies[i], four.bestLatencies[i]);
        EXPECT_EQ(one.bestSchedules[i], four.bestSchedules[i]);
    }
    ASSERT_EQ(one.timeline.size(), four.timeline.size());
    for (size_t i = 0; i < one.timeline.size(); ++i) {
        EXPECT_DOUBLE_EQ(one.timeline[i].timeSec,
                         four.timeline[i].timeSec);
        EXPECT_DOUBLE_EQ(one.timeline[i].networkLatencySec,
                         four.timeline[i].networkLatencySec);
    }
}

TEST(Determinism, DatasetSynthesisIsBitIdenticalAcrossJobCounts)
{
    PoolGuard guard;
    costmodel::DatasetOptions options;
    options.numSubgraphs = 4;
    options.schedulesPerSketch = 8;
    options.seed = 23;
    auto synth = [&] {
        return costmodel::synthesizeDataset(
            sim::deviceConfig(sim::DeviceKind::A5000), options);
    };
    setGlobalJobs(1);
    auto one = synth();
    setGlobalJobs(4);
    auto four = synth();
    ASSERT_EQ(one.size(), four.size());
    for (size_t i = 0; i < one.size(); ++i) {
        EXPECT_EQ(one[i].rawFeatures, four[i].rawFeatures);
        EXPECT_DOUBLE_EQ(one[i].latencySec, four[i].latencySec);
    }
}

} // namespace
} // namespace felix
