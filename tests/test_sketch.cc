/**
 * @file
 * Tests for sketch generation, constraint tracking, sampling,
 * rounding, and validity checking of symbolic schedules.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "expr/compiled.h"
#include "sketch/sampling.h"
#include "sketch/sketch.h"
#include "tir/ops.h"

namespace felix {
namespace sketch {
namespace {

using tir::Annotation;

tir::SubgraphDef
denseAdd(int64_t n = 256, int64_t m = 256, int64_t k = 256)
{
    return tir::dense(n, m, k, /*bias=*/true);
}

TEST(Generate, DenseGetsFullSimpleAndCrossThreadSketch)
{
    // 256x256 spatial with a 256 reduction qualifies for all three
    // reduction rules.
    auto sketches = generateSketches(denseAdd());
    ASSERT_EQ(sketches.size(), 3u);
    EXPECT_EQ(sketches[0].desc, "gpu.multi_level_tiling");
    EXPECT_EQ(sketches[1].desc, "gpu.simple_tiling");
    EXPECT_EQ(sketches[2].desc, "gpu.cross_thread_reduction");
}

TEST(Generate, ElementwiseGetsElementwiseSketch)
{
    tir::ArithCounts arith;
    arith.add = 1;
    auto subgraph = tir::elementwise(1 << 20, 2, arith);
    auto sketches = generateSketches(subgraph);
    ASSERT_EQ(sketches.size(), 1u);
    EXPECT_EQ(sketches[0].desc, "gpu.elementwise");
}

TEST(Generate, SmallReductionSkipsFullTiling)
{
    // Tiny spatial extent: full multi-level tiling is skipped; the
    // shape qualifies for simple tiling and, because the reduction
    // dominates, for the cross-thread reduction rule.
    auto subgraph = tir::dense(4, 4, 1024, false);
    auto sketches = generateSketches(subgraph);
    ASSERT_EQ(sketches.size(), 2u);
    EXPECT_EQ(sketches[0].desc, "gpu.simple_tiling");
    EXPECT_EQ(sketches[1].desc, "gpu.cross_thread_reduction");
}

TEST(Generate, CrossThreadReductionStructure)
{
    auto subgraph = tir::softmax(64, 1024);
    auto sketches = generateSketches(subgraph);
    const SymbolicSchedule *crossThread = nullptr;
    for (const auto &sched : sketches) {
        if (sched.desc == "gpu.cross_thread_reduction")
            crossThread = &sched;
    }
    ASSERT_NE(crossThread, nullptr);
    // The threadIdx loop of the dominant stage covers the reduce
    // axis: threads cooperate on one reduction.
    const auto &program = crossThread->program;
    const auto &root = program.stages[program.rootStage];
    bool threadCoversReduce = false;
    for (const auto &loop : root.loops) {
        if (loop.ann != tir::Annotation::ThreadX)
            continue;
        for (const auto &cover : loop.cover)
            threadCoversReduce |= cover.axis == "j";
    }
    EXPECT_TRUE(threadCoversReduce);
    // All-ones is NOT forced: ct_in has a lower bound keeping the
    // thread count within the hardware limit.
    Rng rng(3);
    for (int i = 0; i < 10; ++i) {
        auto x = sampleValid(*crossThread, rng);
        EXPECT_TRUE(isValidAssignment(*crossThread, x));
    }
}

TEST(Generate, FullSketchVariableCount)
{
    auto sketches = generateSketches(denseAdd());
    const SymbolicSchedule &full = sketches[0];
    // Dense: 2 spatial axes x 3 vars + 1 reduce var + UNROLL = 8.
    EXPECT_EQ(full.vars.size(), 8u);
    // Simple sketch (paper's s*_1 family): thread/inner/reduce/unroll.
    EXPECT_EQ(sketches[1].vars.size(), 4u);
}

TEST(Generate, SymbolicProgramContainsScheduleVars)
{
    auto sketches = generateSketches(denseAdd());
    const SymbolicSchedule &full = sketches[0];
    std::vector<expr::Expr> extents;
    for (const auto &stage : full.program.stages) {
        for (const auto &loop : stage.loops)
            extents.push_back(loop.extent);
    }
    auto vars = expr::collectVars(extents);
    // Every tiling variable appears in some loop bound.
    EXPECT_GE(vars.size(), 7u);
}

TEST(Generate, LaunchBindingsPresent)
{
    auto sketches = generateSketches(denseAdd());
    for (const SymbolicSchedule &sched : sketches) {
        const tir::Program &program = sched.program;
        bool hasBlock = false, hasThread = false;
        for (const auto &loop :
             program.stages[program.rootStage].loops) {
            hasBlock |= loop.ann == Annotation::BlockX;
            hasThread |= loop.ann == Annotation::ThreadX;
        }
        EXPECT_TRUE(hasBlock) << sched.desc;
        EXPECT_TRUE(hasThread) << sched.desc;
    }
}

TEST(Generate, FullSketchHasCacheStages)
{
    auto sketches = generateSketches(denseAdd());
    const tir::Program &program = sketches[0].program;
    int cacheStages = 0;
    for (const auto &stage : program.stages)
        cacheStages += stage.isCacheRead;
    EXPECT_EQ(cacheStages, 2);   // A.shared and B.shared
}

TEST(Generate, EpilogueAttachedUnderDominant)
{
    auto sketches = generateSketches(denseAdd());
    const tir::Program &program = sketches[0].program;
    const auto &epilogue = program.stages[1];
    EXPECT_EQ(epilogue.attachStage, 0);
    EXPECT_TRUE(epilogue.aggregateLoops);
}

TEST(Generate, ConstraintsIncludeResourceLimits)
{
    auto sketches = generateSketches(denseAdd());
    // Full sketch: per-var bounds (7*2) + per-axis tiling (2) +
    // thread/vthread/inner/shared limits (4) + unroll bounds.
    EXPECT_GE(sketches[0].constraints.size(), 16u);
}

TEST(Generate, Conv2dSketches)
{
    tir::Conv2dConfig config;
    config.c = 64;
    config.h = 56;
    config.w = 56;
    config.k = 64;
    config.bias = true;
    config.epilogue = tir::Epilogue::Relu;
    auto sketches = generateSketches(tir::conv2d(config));
    ASSERT_EQ(sketches.size(), 2u);
    // 4 spatial axes, but n == 1 is trivial: 3 x 3 spatial vars +
    // 3 reduce vars + UNROLL = 13.
    EXPECT_EQ(sketches[0].vars.size(), 13u);
}

TEST(Generate, SoftmaxAuxStagesGetOwnVars)
{
    auto sketches = generateSketches(tir::softmax(64, 1024));
    ASSERT_GE(sketches.size(), 1u);
    const SymbolicSchedule &sched = sketches.back();
    // The two non-dominant stages each contribute a thread variable.
    int auxVars = 0;
    for (const VarDomain &domain : sched.vars) {
        if (domain.name.rfind("s", 0) == 0 &&
            domain.name.find("_th") != std::string::npos) {
            ++auxVars;
        }
    }
    EXPECT_EQ(auxVars, 2);
}

TEST(Generate, ScheduleStepSequenceMatchesPaperShape)
{
    // Regression snapshot of the simple-tiling schedule against the
    // paper's Fig. 3 s*_1 structure: fuse, tile with variables,
    // bind, attach the epilogue, unroll pragma.
    auto sketches = generateSketches(denseAdd());
    const auto &sched = sketches[1];
    std::vector<tir::StepKind> kinds;
    for (const auto &step : sched.schedule.steps)
        kinds.push_back(step.kind);
    EXPECT_EQ(kinds,
              (std::vector<tir::StepKind>{
                  tir::StepKind::Fuse, tir::StepKind::Split,
                  tir::StepKind::Split, tir::StepKind::Reorder,
                  tir::StepKind::Annotate, tir::StepKind::Annotate,
                  tir::StepKind::ComputeAt, tir::StepKind::Pragma}));
    // The printed schedule mentions the symbolic variables.
    std::string text = sched.schedule.str();
    EXPECT_NE(text.find("f_th"), std::string::npos);
    EXPECT_NE(text.find("UNROLL"), std::string::npos);
    EXPECT_NE(text.find("threadIdx.x"), std::string::npos);
}

TEST(Sampling, SamplesAreValid)
{
    auto sketches = generateSketches(denseAdd());
    Rng rng(42);
    for (const SymbolicSchedule &sched : sketches) {
        for (int i = 0; i < 20; ++i) {
            auto x = sampleValid(sched, rng);
            EXPECT_TRUE(isValidAssignment(sched, x)) << sched.desc;
        }
    }
}

TEST(Sampling, SamplesAreDiverse)
{
    auto sketches = generateSketches(denseAdd());
    Rng rng(7);
    std::set<std::vector<double>> seen;
    for (int i = 0; i < 32; ++i)
        seen.insert(sampleValid(sketches[0], rng));
    EXPECT_GE(seen.size(), 16u);
}

TEST(Sampling, TileProductsDivideExtent)
{
    auto sketches = generateSketches(denseAdd(192, 384, 96));
    Rng rng(3);
    const SymbolicSchedule &sched = sketches[0];
    for (int i = 0; i < 20; ++i) {
        auto x = sampleValid(sched, rng);
        for (const SplitGroup &group : sched.groups) {
            int64_t product = 1;
            for (int vi : group.varIndices)
                product *= static_cast<int64_t>(x[vi]);
            EXPECT_EQ(group.extent % product, 0);
        }
    }
}

TEST(Rounding, SnapsToDivisorsInLogSpace)
{
    auto sketches = generateSketches(denseAdd());
    const SymbolicSchedule &sched = sketches[1];   // simple: 4 vars
    // Log-space target values.
    std::vector<double> y(sched.vars.size(), 0.0);
    int fTh = sched.varIndex("f_th");
    y[fTh] = std::log(100.0);    // near 128 in log space? 64 vs 128
    auto rounded = roundToValid(sched, y);
    ASSERT_TRUE(rounded.has_value());
    double v = (*rounded)[fTh];
    // 100 must snap to a divisor of 256*256.
    EXPECT_EQ(static_cast<int64_t>(256 * 256) %
                  static_cast<int64_t>(v),
              0);
    EXPECT_TRUE(v == 64.0 || v == 128.0);
    EXPECT_TRUE(isValidAssignment(sched, *rounded));
}

TEST(Rounding, InfeasibleResourceReturnsNullopt)
{
    auto sketches = generateSketches(denseAdd());
    const SymbolicSchedule &full = sketches[0];
    // Ask for huge thread tiles on both spatial axes: product would
    // exceed 1024 threads.
    std::vector<double> y(full.vars.size(), 0.0);
    y[full.varIndex("sp0_th")] = std::log(256.0);
    y[full.varIndex("sp1_th")] = std::log(256.0);
    auto rounded = roundToValid(full, y);
    EXPECT_FALSE(rounded.has_value());
}

TEST(Rounding, AllOnesAlwaysValid)
{
    for (const auto &sched : generateSketches(denseAdd())) {
        std::vector<double> y(sched.vars.size(), 0.0);   // e^0 = 1
        auto rounded = roundToValid(sched, y);
        ASSERT_TRUE(rounded.has_value()) << sched.desc;
        EXPECT_TRUE(isValidAssignment(sched, *rounded));
    }
}

TEST(Validity, RejectsNonIntegerAndOutOfDomain)
{
    auto sketches = generateSketches(denseAdd());
    const SymbolicSchedule &sched = sketches[1];
    std::vector<double> x(sched.vars.size(), 1.0);
    EXPECT_TRUE(isValidAssignment(sched, x));
    x[0] = 1.5;
    EXPECT_FALSE(isValidAssignment(sched, x));
    x[0] = 1e9;
    EXPECT_FALSE(isValidAssignment(sched, x));
}

TEST(Validity, RejectsNonDivisorTiles)
{
    auto sketches = generateSketches(denseAdd());
    const SymbolicSchedule &sched = sketches[1];
    std::vector<double> x(sched.vars.size(), 1.0);
    x[sched.varIndex("f_th")] = 7.0;   // 7 does not divide 65536
    EXPECT_FALSE(isValidAssignment(sched, x));
}

TEST(ConstraintCheckerTest, ViolationMagnitude)
{
    auto sketches = generateSketches(denseAdd());
    const SymbolicSchedule &sched = sketches[1];
    ConstraintChecker checker(sched);
    std::vector<double> ok(sched.vars.size(), 1.0);
    EXPECT_LE(checker.maxViolation(ok), 0.0);
    std::vector<double> bad = ok;
    bad[sched.varIndex("f_th")] = 4096.0;   // over maxThreadsPerBlock
    EXPECT_GT(checker.maxViolation(bad), 0.0);
}

} // namespace
} // namespace sketch
} // namespace felix
