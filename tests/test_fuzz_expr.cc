/**
 * @file
 * Fuzz tests of the expression substrate: random expression trees
 * evaluated three ways (recursive semantics, compiled tape, after
 * substitution round-trips) must agree; tape gradients must match
 * symbolic derivatives and finite differences on smooth regions.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "autodiff/gradcheck.h"
#include "autodiff/symbolic.h"
#include "expr/compiled.h"
#include "expr/expr.h"
#include "support/rng.h"

namespace felix {
namespace expr {
namespace {

/** Reference recursive evaluator, independent of the tape. */
double
refEval(const Expr &e, const std::unordered_map<std::string, double> &env)
{
    if (e.isConst())
        return e.constValue();
    if (e.isVar())
        return env.at(e.varName());
    double args[3] = {0, 0, 0};
    for (size_t i = 0; i < e->args().size(); ++i)
        args[i] = refEval(e->args()[i], env);
    return evalOp(e->op(), args);
}

/** Random expression tree over the given variables. */
Expr
randomExpr(Rng &rng, const std::vector<std::string> &vars, int depth,
           bool smooth_only)
{
    if (depth <= 0 || rng.bernoulli(0.25)) {
        if (rng.bernoulli(0.5))
            return Expr::var(vars[rng.index(vars.size())]);
        return Expr::constant(rng.uniform(0.25, 4.0));
    }
    Expr a = randomExpr(rng, vars, depth - 1, smooth_only);
    Expr b = randomExpr(rng, vars, depth - 1, smooth_only);
    switch (rng.index(smooth_only ? 9 : 13)) {
      case 0: return a + b;
      case 1: return a - b;
      case 2: return a * b;
      case 3: return a / (abs(b) + 0.5);   // keep denominators away
                                           // from zero
      case 4: return exp(a * 0.25);
      case 5: return log(abs(a) + 0.5);
      case 6: return sqrt(abs(a) + 0.1);
      case 7: return sigmoid(a);
      case 8: return atan(a);
      case 9: return min(a, b);
      case 10: return max(a, b);
      case 11: return select(gt(a, b), a + 1.0, b * 2.0);
      default: return floor(a);
    }
}

TEST(FuzzExpr, TapeMatchesReferenceEvaluator)
{
    Rng rng(2024);
    const std::vector<std::string> vars = {"u", "v", "w"};
    for (int trial = 0; trial < 200; ++trial) {
        Expr e = randomExpr(rng, vars, 5, /*smooth_only=*/false);
        std::unordered_map<std::string, double> env = {
            {"u", rng.uniform(-2.0, 2.0)},
            {"v", rng.uniform(-2.0, 2.0)},
            {"w", rng.uniform(0.1, 3.0)},
        };
        double ref = refEval(e, env);
        double tape = evalExpr(e, env);
        if (std::isfinite(ref)) {
            EXPECT_NEAR(tape, ref,
                        1e-9 * std::max(1.0, std::abs(ref)))
                << "trial " << trial << ": " << e.str();
        }
    }
}

TEST(FuzzExpr, SubstitutionIdentityRoundTrip)
{
    // Substituting x -> x must return the identical interned node;
    // substituting x -> (x+0)*1 must evaluate identically.
    Rng rng(7);
    const std::vector<std::string> vars = {"x", "y"};
    for (int trial = 0; trial < 100; ++trial) {
        Expr e = randomExpr(rng, vars, 4, false);
        Expr same = substitute(e, {{"x", Expr::var("x")}});
        EXPECT_TRUE(same.same(e)) << e.str();
    }
}

TEST(FuzzExpr, TapeGradMatchesSymbolicOnSmoothTrees)
{
    Rng rng(99);
    const std::vector<std::string> vars = {"u", "v"};
    int checked = 0;
    for (int trial = 0; trial < 120; ++trial) {
        Expr e = randomExpr(rng, vars, 4, /*smooth_only=*/true);
        std::unordered_map<std::string, double> env = {
            {"u", rng.uniform(0.2, 2.0)},
            {"v", rng.uniform(0.2, 2.0)},
        };
        double value = evalExpr(e, env);
        if (!std::isfinite(value) || std::abs(value) > 1e8)
            continue;

        CompiledExprs compiled({e});
        std::vector<double> x;
        for (const std::string &name : compiled.varNames())
            x.push_back(env.at(name));
        std::vector<double> out, tapeGrad;
        compiled.forward(x, out);
        compiled.backward({1.0}, tapeGrad);

        for (size_t i = 0; i < compiled.numVars(); ++i) {
            Expr d = autodiff::derivative(
                e, compiled.varNames()[i]);
            double symbolic = evalExpr(d, env);
            if (!std::isfinite(symbolic))
                continue;
            EXPECT_NEAR(tapeGrad[i], symbolic,
                        1e-6 * std::max(1.0, std::abs(symbolic)))
                << "d/d" << compiled.varNames()[i] << " of "
                << e.str();
            ++checked;
        }
    }
    EXPECT_GT(checked, 100);
}

TEST(FuzzExpr, TapeGradMatchesFiniteDifferences)
{
    Rng rng(55);
    const std::vector<std::string> vars = {"u", "v"};
    int checked = 0;
    for (int trial = 0; trial < 80; ++trial) {
        Expr e = randomExpr(rng, vars, 4, /*smooth_only=*/true);
        std::unordered_map<std::string, double> env = {
            {"u", rng.uniform(0.3, 1.8)},
            {"v", rng.uniform(0.3, 1.8)},
        };
        double value = evalExpr(e, env);
        if (!std::isfinite(value) || std::abs(value) > 1e6)
            continue;
        auto result = autodiff::checkGradients(e, env, 1e-6, 5e-3);
        EXPECT_TRUE(result.passed)
            << e.str() << " rel err " << result.maxRelError;
        ++checked;
    }
    EXPECT_GT(checked, 40);
}

TEST(FuzzExpr, InternTableDeduplicatesAggressively)
{
    // Building the same 200 random trees twice must not grow the
    // intern table on the second pass.
    Rng rngA(123);
    const std::vector<std::string> vars = {"u", "v", "w"};
    for (int trial = 0; trial < 200; ++trial)
        randomExpr(rngA, vars, 5, false);
    size_t afterFirst = internTableSize();
    Rng rngB(123);
    for (int trial = 0; trial < 200; ++trial)
        randomExpr(rngB, vars, 5, false);
    EXPECT_EQ(internTableSize(), afterFirst);
}

} // namespace
} // namespace expr
} // namespace felix
