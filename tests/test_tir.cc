/**
 * @file
 * Tests for the tensor IR: operator builders, naive programs,
 * transformation steps (split/fuse/reorder/annotate/compute_at/
 * cache_read/pragma), and symbolic vs concrete scheduling.
 */
#include <gtest/gtest.h>

#include "expr/compiled.h"
#include "tir/ops.h"
#include "tir/program.h"
#include "tir/schedule.h"

namespace felix {
namespace tir {
namespace {

using expr::Expr;

SubgraphDef
denseAdd(int64_t n = 64, int64_t m = 64, int64_t k = 64)
{
    return dense(n, m, k, /*bias=*/true);
}

TEST(Ops, DenseShapesAndFlops)
{
    SubgraphDef subgraph = dense(128, 256, 512, false);
    ASSERT_EQ(subgraph.ops.size(), 1u);
    const ComputeOp &op = subgraph.ops[0];
    EXPECT_EQ(op.spatialExtent(), 128 * 256);
    EXPECT_EQ(op.reduceExtent(), 512);
    // One FMA per point = 2 flops.
    EXPECT_DOUBLE_EQ(op.flops(), 2.0 * 128 * 256 * 512);
}

TEST(Ops, DenseWithBiasHasEpilogueStage)
{
    SubgraphDef subgraph = denseAdd();
    ASSERT_EQ(subgraph.ops.size(), 2u);
    EXPECT_EQ(subgraph.dominantOpIndex(), 0);
    const ComputeOp &epilogue = subgraph.ops[1];
    EXPECT_EQ(epilogue.reduceExtent(), 1);
    // Reads the matmul output and the bias vector.
    ASSERT_EQ(epilogue.inputs.size(), 2u);
    EXPECT_EQ(epilogue.inputs[0].tensor, subgraph.ops[0].name);
}

TEST(Ops, Conv2dOutputShape)
{
    Conv2dConfig config;
    config.n = 1;
    config.c = 64;
    config.h = 56;
    config.w = 56;
    config.k = 128;
    config.r = 3;
    config.s = 3;
    config.stride = 2;
    config.pad = 1;
    SubgraphDef subgraph = conv2d(config);
    const ComputeOp &op = subgraph.ops[0];
    EXPECT_EQ(config.outH(), 28);
    EXPECT_EQ(op.spatialExtent(), 1 * 128 * 28 * 28);
    EXPECT_EQ(op.reduceExtent(), 64 * 3 * 3);
}

TEST(Ops, Conv2dSlidingWindowFootprintContribs)
{
    Conv2dConfig config;
    config.stride = 2;
    SubgraphDef subgraph = conv2d(config);
    const BufferAccess &data = subgraph.ops[0].inputs[0];
    // Height dim: driven by oh (stride 2) and r (stride 1).
    const BufferDim &hDim = data.dims[2];
    ASSERT_EQ(hDim.contribs.size(), 2u);
    EXPECT_EQ(hDim.contribs[0].axis, "oh");
    EXPECT_EQ(hDim.contribs[0].stride, 2);
    EXPECT_EQ(hDim.contribs[1].axis, "r");
}

TEST(Ops, DepthwiseConvReducesOnlySpatialTaps)
{
    Conv2dConfig config;
    config.c = 32;
    config.k = 32;
    config.groups = 32;
    SubgraphDef subgraph = conv2d(config);
    // Depthwise: reduction over r*s only (c/groups == 1).
    EXPECT_EQ(subgraph.ops[0].reduceExtent(), 3 * 3);
}

TEST(Ops, SoftmaxHasThreeStages)
{
    SubgraphDef subgraph = softmax(16, 1024);
    EXPECT_EQ(subgraph.ops.size(), 3u);
    // Dominant is the exp-sum reduction stage.
    EXPECT_EQ(subgraph.ops[subgraph.dominantOpIndex()].name,
              "softmax_expsum");
}

TEST(Ops, StructuralHashDistinguishesShapes)
{
    EXPECT_EQ(dense(64, 64, 64).structuralHash(),
              dense(64, 64, 64).structuralHash());
    EXPECT_NE(dense(64, 64, 64).structuralHash(),
              dense(64, 64, 128).structuralHash());
}

TEST(NaiveProgram, OneLoopPerAxis)
{
    Program program = naiveProgram(denseAdd());
    ASSERT_EQ(program.stages.size(), 2u);
    EXPECT_EQ(program.stages[0].loops.size(), 3u);   // i, j, kk
    EXPECT_EQ(program.stages[1].loops.size(), 2u);
    EXPECT_TRUE(program.stages[0].loops[0].extent.isConst(64.0));
}

TEST(Transform, SplitConcreteFactors)
{
    SubgraphDef subgraph = denseAdd();
    Schedule schedule;
    TransformStep split;
    split.kind = StepKind::Split;
    split.stageId = 0;
    split.loopIndex = 1;                       // j, extent 64
    split.factors = {Expr::constant(8.0)};
    schedule.steps.push_back(split);
    Program program = applySchedule(subgraph, schedule);
    ASSERT_EQ(program.stages[0].loops.size(), 4u);
    EXPECT_TRUE(program.stages[0].loops[1].extent.isConst(8.0));
    EXPECT_TRUE(program.stages[0].loops[2].extent.isConst(8.0));
    EXPECT_EQ(program.stages[0].loops[1].name, "j.0");
    EXPECT_EQ(program.stages[0].loops[2].name, "j.1");
}

TEST(Transform, SplitSymbolicFactorKeepsVariable)
{
    SubgraphDef subgraph = denseAdd();
    Schedule schedule;
    schedule.vars = {"T"};
    TransformStep split;
    split.kind = StepKind::Split;
    split.stageId = 0;
    split.loopIndex = 1;
    split.factors = {Expr::var("T")};
    schedule.steps.push_back(split);
    Program program = applySchedule(subgraph, schedule);
    // Outer extent is 64 / T: contains the variable.
    auto vars = expr::collectVars({program.stages[0].loops[1].extent});
    EXPECT_EQ(vars, (std::vector<std::string>{"T"}));
    // Binding T = 16 folds extents to constants.
    Schedule bound = schedule.bind({16.0});
    Program concrete = applySchedule(subgraph, bound);
    EXPECT_TRUE(concrete.stages[0].loops[1].extent.isConst(4.0));
    EXPECT_TRUE(concrete.stages[0].loops[2].extent.isConst(16.0));
}

TEST(Transform, SplitCoverTracksOriginAxis)
{
    SubgraphDef subgraph = denseAdd();
    Schedule schedule;
    TransformStep split;
    split.kind = StepKind::Split;
    split.stageId = 0;
    split.loopIndex = 0;   // i
    split.factors = {Expr::constant(4.0)};
    schedule.steps.push_back(split);
    Program program = applySchedule(subgraph, schedule);
    const LoopInfo &inner = program.stages[0].loops[1];
    ASSERT_EQ(inner.cover.size(), 1u);
    EXPECT_EQ(inner.cover[0].axis, "i");
    EXPECT_TRUE(inner.cover[0].extent.isConst(4.0));
}

TEST(Transform, FuseMultipliesExtentsAndMergesCover)
{
    SubgraphDef subgraph = denseAdd();
    Schedule schedule;
    TransformStep fuse;
    fuse.kind = StepKind::Fuse;
    fuse.stageId = 0;
    fuse.loopIndex = 0;
    fuse.count = 2;        // fuse i and j
    schedule.steps.push_back(fuse);
    Program program = applySchedule(subgraph, schedule);
    ASSERT_EQ(program.stages[0].loops.size(), 2u);
    EXPECT_TRUE(program.stages[0].loops[0].extent.isConst(64.0 * 64.0));
    EXPECT_EQ(program.stages[0].loops[0].cover.size(), 2u);
}

TEST(Transform, FusedSplitDistributesCoverInnermostFirst)
{
    // Fuse (i, j) then split off an inner tile of 16 <= extent(j):
    // the tile must cover only j.
    SubgraphDef subgraph = denseAdd();
    Schedule schedule;
    TransformStep fuse;
    fuse.kind = StepKind::Fuse;
    fuse.stageId = 0;
    fuse.loopIndex = 0;
    fuse.count = 2;
    schedule.steps.push_back(fuse);
    TransformStep split;
    split.kind = StepKind::Split;
    split.stageId = 0;
    split.loopIndex = 0;
    split.factors = {Expr::constant(16.0)};
    schedule.steps.push_back(split);
    Program program = applySchedule(subgraph, schedule);
    const LoopInfo &inner = program.stages[0].loops[1];
    double coveredJ = 1.0, coveredI = 1.0;
    for (const AxisCover &cover : inner.cover) {
        if (cover.axis == "j")
            coveredJ = cover.extent.constValue();
        if (cover.axis == "i")
            coveredI = cover.extent.constValue();
    }
    EXPECT_DOUBLE_EQ(coveredJ, 16.0);
    EXPECT_DOUBLE_EQ(coveredI, 1.0);
}

TEST(Transform, ReorderPermutesLoops)
{
    SubgraphDef subgraph = denseAdd();
    Schedule schedule;
    TransformStep reorder;
    reorder.kind = StepKind::Reorder;
    reorder.stageId = 0;
    reorder.order = {2, 0, 1};
    schedule.steps.push_back(reorder);
    Program program = applySchedule(subgraph, schedule);
    EXPECT_EQ(program.stages[0].loops[0].name, "kk");
    EXPECT_EQ(program.stages[0].loops[1].name, "i");
}

TEST(Transform, AnnotateAndAnnotatedExtent)
{
    SubgraphDef subgraph = denseAdd();
    Schedule schedule;
    TransformStep ann;
    ann.kind = StepKind::Annotate;
    ann.stageId = 0;
    ann.loopIndex = 0;
    ann.annotation = Annotation::BlockX;
    schedule.steps.push_back(ann);
    Program program = applySchedule(subgraph, schedule);
    EXPECT_TRUE(program.annotatedExtent(Annotation::BlockX)
                    .isConst(64.0));
    EXPECT_TRUE(program.annotatedExtent(Annotation::ThreadX)
                    .isConst(1.0));
}

TEST(Transform, ComputeAtShrinksAttachedStage)
{
    SubgraphDef subgraph = denseAdd();
    Schedule schedule;
    // Split i of the matmul into 8x8, attach the bias stage under
    // the outer loop.
    TransformStep split;
    split.kind = StepKind::Split;
    split.stageId = 0;
    split.loopIndex = 0;
    split.factors = {Expr::constant(8.0)};
    schedule.steps.push_back(split);
    TransformStep at;
    at.kind = StepKind::ComputeAt;
    at.stageId = 1;
    at.targetStageId = 0;
    at.targetLoopIndex = 0;    // under i.0 (extent 8)
    schedule.steps.push_back(at);
    Program program = applySchedule(subgraph, schedule);
    const StageInfo &epilogue = program.stages[1];
    EXPECT_EQ(epilogue.attachStage, 0);
    EXPECT_TRUE(epilogue.aggregateLoops);
    ASSERT_EQ(epilogue.loops.size(), 1u);
    // Per-execution work: 64*64 total / 8 executions = 512.
    EXPECT_TRUE(epilogue.loops[0].extent.isConst(512.0));
}

TEST(Transform, CacheReadAppendsSharedStage)
{
    SubgraphDef subgraph = denseAdd();
    Schedule schedule;
    TransformStep cache;
    cache.kind = StepKind::CacheRead;
    cache.stageId = 0;
    cache.inputIndex = 0;      // A
    cache.targetLoopIndex = 2; // under kk
    schedule.steps.push_back(cache);
    Program program = applySchedule(subgraph, schedule);
    ASSERT_EQ(program.stages.size(), 3u);
    const StageInfo &cacheStage = program.stages.back();
    EXPECT_TRUE(cacheStage.isCacheRead);
    EXPECT_EQ(cacheStage.outputScope, MemScope::Shared);
    EXPECT_EQ(cacheStage.name, "A.shared");
    EXPECT_EQ(cacheStage.cacheConsumerStage, 0);
}

TEST(Transform, PragmaSetsUnroll)
{
    SubgraphDef subgraph = denseAdd();
    Schedule schedule;
    schedule.vars = {"U"};
    TransformStep pragma;
    pragma.kind = StepKind::Pragma;
    pragma.factors = {Expr::var("U")};
    schedule.steps.push_back(pragma);
    Program program = applySchedule(subgraph, schedule);
    EXPECT_TRUE(program.unrollMaxStep.isVar());
}

TEST(Schedule, BindSubstitutesAllFactors)
{
    Schedule schedule;
    schedule.vars = {"A", "B"};
    TransformStep split;
    split.kind = StepKind::Split;
    split.factors = {Expr::var("A") * Expr::var("B")};
    schedule.steps.push_back(split);
    Schedule bound = schedule.bind({3.0, 5.0});
    EXPECT_TRUE(bound.steps[0].factors[0].isConst(15.0));
}

TEST(Schedule, PrinterShowsStepKinds)
{
    Schedule schedule;
    schedule.vars = {"T"};
    TransformStep split;
    split.kind = StepKind::Split;
    split.stageId = 0;
    split.loopIndex = 1;
    split.factors = {Expr::var("T")};
    schedule.steps.push_back(split);
    std::string text = schedule.str();
    EXPECT_NE(text.find("Split"), std::string::npos);
    EXPECT_NE(text.find("T"), std::string::npos);
}

TEST(Program, PrinterRendersLoops)
{
    Program program = naiveProgram(denseAdd());
    std::string text = program.str();
    EXPECT_NE(text.find("for i in (0, 64)"), std::string::npos);
    EXPECT_NE(text.find("stage dense"), std::string::npos);
}

} // namespace
} // namespace tir
} // namespace felix
