/**
 * @file
 * Google-benchmark microbenchmarks of the substrates on Felix's hot
 * paths: expression-tape forward/backward evaluation, feature
 * extraction + rewriting, sketch generation, schedule sampling /
 * rounding, MLP inference and input gradients, and the GPU latency
 * model. These bound the real (wall-clock) cost behind the virtual
 * tuning clock (see DESIGN.md).
 */
#include <benchmark/benchmark.h>

#include "costmodel/cost_model.h"
#include "costmodel/dataset.h"
#include "expr/compiled.h"
#include "features/features.h"
#include "optim/search.h"
#include "rewrite/transforms.h"
#include "sim/gpu_model.h"
#include "sketch/sampling.h"
#include "tir/ops.h"

namespace {

using namespace felix;

const sketch::SymbolicSchedule &
denseSketch()
{
    static const auto sketches =
        sketch::generateSketches(tir::dense(512, 512, 512, true));
    return sketches[0];
}

std::vector<std::string>
varNames(const sketch::SymbolicSchedule &sched)
{
    std::vector<std::string> names;
    for (const auto &domain : sched.vars)
        names.push_back(domain.name);
    return names;
}

void
BM_SketchGeneration(benchmark::State &state)
{
    auto subgraph = tir::dense(512, 512, 512, true);
    for (auto _ : state) {
        auto sketches = sketch::generateSketches(subgraph);
        benchmark::DoNotOptimize(sketches);
    }
}
BENCHMARK(BM_SketchGeneration);

void
BM_FeatureExtraction(benchmark::State &state)
{
    const auto &sched = denseSketch();
    for (auto _ : state) {
        auto features = features::extractFeatures(sched.program);
        benchmark::DoNotOptimize(features);
    }
}
BENCHMARK(BM_FeatureExtraction);

void
BM_SmoothingPipeline(benchmark::State &state)
{
    const auto &sched = denseSketch();
    auto names = varNames(sched);
    auto raw = features::extractFeatures(sched.program);
    for (auto _ : state) {
        auto out = rewrite::featurePipeline(raw[0], names);
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_SmoothingPipeline);

void
BM_TapeForward(benchmark::State &state)
{
    const auto &sched = denseSketch();
    auto names = varNames(sched);
    expr::CompiledExprs tape(features::extractFeatures(sched.program),
                             names);
    std::vector<double> x(names.size(), 4.0);
    std::vector<double> out;
    for (auto _ : state) {
        tape.forward(x, out);
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_TapeForward);

void
BM_TapeForwardBackward(benchmark::State &state)
{
    const auto &sched = denseSketch();
    auto names = varNames(sched);
    std::vector<expr::Expr> outputs;
    for (const auto &f : features::extractFeatures(sched.program))
        outputs.push_back(rewrite::featurePipeline(f, names));
    expr::CompiledExprs tape(outputs, names);
    std::vector<double> x(names.size(), 1.0);
    std::vector<double> out, seed, grads;
    for (auto _ : state) {
        tape.forward(x, out);
        seed.assign(out.size(), 1.0);
        tape.backward(seed, grads);
        benchmark::DoNotOptimize(grads);
    }
}
BENCHMARK(BM_TapeForwardBackward);

void
BM_SampleValid(benchmark::State &state)
{
    const auto &sched = denseSketch();
    Rng rng(1);
    for (auto _ : state) {
        auto x = sketch::sampleValid(sched, rng);
        benchmark::DoNotOptimize(x);
    }
}
BENCHMARK(BM_SampleValid);

void
BM_RoundToValid(benchmark::State &state)
{
    const auto &sched = denseSketch();
    sketch::ConstraintChecker checker(sched);
    std::vector<double> y(sched.vars.size(), 1.2);
    for (auto _ : state) {
        auto x = sketch::roundToValid(sched, y, checker);
        benchmark::DoNotOptimize(x);
    }
}
BENCHMARK(BM_RoundToValid);

void
BM_MlpForward(benchmark::State &state)
{
    Rng rng(7);
    costmodel::Mlp mlp({}, rng);
    std::vector<double> x(features::kNumFeatures, 0.3);
    for (auto _ : state)
        benchmark::DoNotOptimize(mlp.forward(x));
}
BENCHMARK(BM_MlpForward);

void
BM_MlpInputGrad(benchmark::State &state)
{
    Rng rng(7);
    costmodel::Mlp mlp({}, rng);
    std::vector<double> x(features::kNumFeatures, 0.3);
    std::vector<double> grad;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mlp.forwardInputGrad(x, grad));
    }
}
BENCHMARK(BM_MlpInputGrad);

void
BM_GpuLatencyModel(benchmark::State &state)
{
    const auto &sched = denseSketch();
    auto names = varNames(sched);
    expr::CompiledExprs tape(features::extractFeatures(sched.program),
                             names);
    std::vector<double> x(names.size(), 4.0);
    auto f = tape.eval(x);
    const auto &device = sim::deviceConfig(sim::DeviceKind::A5000);
    for (auto _ : state)
        benchmark::DoNotOptimize(sim::kernelLatency(f, device));
}
BENCHMARK(BM_GpuLatencyModel);

void
BM_GradientSearchStep(benchmark::State &state)
{
    // One full gradient-search round, small budget: the per-round
    // cost behind Felix's virtual clock.
    auto subgraph = tir::dense(256, 256, 256, true);
    optim::GradSearchOptions grad;
    grad.nSeeds = 2;
    grad.nSteps = 25;
    optim::GradientSearch search(subgraph, grad);
    auto model = costmodel::pretrainedCostModel(
        sim::DeviceKind::A5000, "pretrained");
    Rng rng(3);
    for (auto _ : state) {
        auto result = search.round(model, rng);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_GradientSearchStep)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
