#include "bench/common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.h"
#include "support/logging.h"
#include "support/parallel.h"
#include "support/string_util.h"

namespace felix {
namespace bench {

BenchOptions
parseArgs(int argc, char **argv)
{
    BenchOptions options;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            FELIX_CHECK(i + 1 < argc, "missing value for " + arg);
            return argv[++i];
        };
        if (arg == "--full") {
            options.full = true;
        } else if (arg == "--budget") {
            options.budgetSec = std::atof(next().c_str());
        } else if (arg == "--seed") {
            options.seed = std::strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--device") {
            options.device = next();
        } else if (arg == "--jobs") {
            options.jobs = std::atoi(next().c_str());
            FELIX_CHECK(options.jobs >= 1,
                        "--jobs needs a positive thread count");
        } else if (arg == "--cache-dir") {
            options.cacheDir = next();
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "options: [--full] [--budget SECONDS] [--seed N]\n"
                "         [--jobs N] [--device a10g|a5000|xavier-nx]\n"
                "         [--cache-dir DIR]\n"
                "--full uses paper-scale search settings; defaults\n"
                "are scaled down for a single CPU core. --jobs only\n"
                "changes wall-clock time, never results.\n");
            std::exit(0);
        } else {
            fatal("unknown argument: " + arg);
        }
    }
    if (options.jobs > 0)
        setGlobalJobs(options.jobs);
    return options;
}

tuner::TunerOptions
felixOptions(const BenchOptions &options)
{
    tuner::TunerOptions tuner;
    tuner.strategy = tuner::StrategyKind::FelixGradient;
    tuner.seed = options.seed;
    tuner.numThreads = options.jobs;
    // Paper defaults (§5): nSeeds 8, nSteps 200, nMeasure 16 — cheap
    // enough to keep even in the scaled-down runs.
    tuner.grad.nSeeds = 8;
    tuner.grad.nSteps = options.full ? 200 : 120;
    tuner.grad.nMeasure = 16;
    return tuner;
}

tuner::TunerOptions
ansorOptions(const BenchOptions &options)
{
    tuner::TunerOptions tuner;
    tuner.strategy = tuner::StrategyKind::AnsorTenSet;
    tuner.seed = options.seed;
    tuner.numThreads = options.jobs;
    // Paper (§5): population 2048, 4 generations, 64 measurements.
    // The scaled-down default keeps the prediction ratio to Felix
    // (~5x) while fitting the CPU budget.
    tuner.evo.population = options.full ? 2048 : 512;
    tuner.evo.generations = 4;
    tuner.evo.nMeasure = 64;
    return tuner;
}

double
defaultBudget(const BenchOptions &options)
{
    if (options.budgetSec > 0.0)
        return options.budgetSec;
    return options.full ? 8000.0 : 1800.0;
}

std::vector<sim::DeviceKind>
selectedDevices(const BenchOptions &options)
{
    if (!options.device.empty())
        return {sim::parseDevice(options.device)};
    return sim::allDevices();
}

costmodel::CostModel
modelFor(sim::DeviceKind device, const BenchOptions &options)
{
    return costmodel::pretrainedCostModel(device, options.cacheDir);
}

PhaseTimings
phaseTimings()
{
    auto &registry = obs::MetricsRegistry::instance();
    PhaseTimings t;
    t.sketchMs = registry.counter("sketch.generate_ms").value();
    t.compileTapesMs =
        registry.counter("search.compile_tapes_ms").value();
    t.searchMs = registry.counter("tuner.search_ms").value();
    t.measureMs = registry.counter("tuner.measure_ms").value();
    t.finetuneMs = registry.counter("tuner.finetune_ms").value();
    return t;
}

PhaseTimings
phaseDelta(const PhaseTimings &before, const PhaseTimings &after)
{
    PhaseTimings d;
    d.sketchMs = after.sketchMs - before.sketchMs;
    d.compileTapesMs = after.compileTapesMs - before.compileTapesMs;
    d.searchMs = after.searchMs - before.searchMs;
    d.measureMs = after.measureMs - before.measureMs;
    d.finetuneMs = after.finetuneMs - before.finetuneMs;
    return d;
}

void
printPhaseBreakdown(const PhaseTimings &delta)
{
    std::printf("    phases (real): sketch %.2fs | tapes %.2fs | "
                "search %.2fs | measure %.2fs | finetune %.2fs\n",
                delta.sketchMs * 1e-3, delta.compileTapesMs * 1e-3,
                delta.searchMs * 1e-3, delta.measureMs * 1e-3,
                delta.finetuneMs * 1e-3);
}

std::unique_ptr<tuner::GraphTuner>
tuneNetwork(const models::NetworkSpec &spec, int batch,
            sim::DeviceKind device, tuner::TunerOptions tuner_options,
            double budget_sec, const BenchOptions &options)
{
    // Per-phase real-time accounting through the metrics registry
    // (the tuner and search layers feed these counters) instead of
    // one end-to-end duration around the whole call.
    PhaseTimings before = phaseTimings();
    auto tasks = extractSubgraphs(spec.build(batch));
    auto tuner = std::make_unique<tuner::GraphTuner>(
        std::move(tasks), modelFor(device, options), device,
        std::move(tuner_options));
    tuner->tuneUntil(budget_sec);
    printPhaseBreakdown(phaseDelta(before, phaseTimings()));
    return tuner;
}

double
timeToLatency(const std::vector<tuner::TimelinePoint> &timeline,
              double target_sec)
{
    for (const tuner::TimelinePoint &point : timeline) {
        if (point.networkLatencySec <= target_sec)
            return point.timeSec;
    }
    return -1.0;
}

void
printHeader(const std::string &title, const BenchOptions &options)
{
    std::printf("== %s ==\n", title.c_str());
    std::printf("settings: %s, budget %.0f virtual seconds, seed %llu\n",
                options.full ? "paper-scale (--full)"
                             : "scaled-down default",
                defaultBudget(options),
                static_cast<unsigned long long>(options.seed));
    std::printf("(tuning time is the deterministic virtual clock; "
                "see DESIGN.md)\n\n");
    std::fflush(stdout);
}

std::string
fmtMs(double seconds)
{
    return strformat("%.3f ms", seconds * 1e3);
}

std::string
fmtSpeedup(double ratio)
{
    if (ratio <= 0.0)
        return "-";
    return strformat("%.1fx", ratio);
}

} // namespace bench
} // namespace felix
