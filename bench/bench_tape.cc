/**
 * @file
 * Tape-engine throughput microbenchmark: points/second through a
 * production feature tape (a dense-matmul sketch's 82 feature
 * formulas), scalar vs. batched SoA, forward-only and
 * forward+backward, plus the batched MLP kernels the points feed and
 * the Adam parameter update, and the end-to-end surrogate descent
 * step (grad_search_step: scalar reference, unfused batch, fused,
 * fused + tape JIT). Every batched benchmark runs once per
 * available SIMD backend (scalar fallback, SSE2, AVX2, AVX-512 —
 * whatever this build and CPU support), so one run shows the whole
 * width sweep. Instruction counts before/after the tape optimizer
 * are reported as counters.
 *
 * Besides the console table, results are written machine-readable to
 * BENCH_tape.json in the working directory (override with
 * --json-out=FILE); datapoints are recorded in EXPERIMENTS.md. The
 * widest batched backend must clear 2x the scalar points/sec.
 */
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "costmodel/cost_model.h"
#include "costmodel/fused.h"
#include "costmodel/mlp.h"
#include "expr/compiled.h"
#include "features/features.h"
#include "jit/jit.h"
#include "obs/json.h"
#include "optim/adam.h"
#include "rewrite/smoothing.h"
#include "rewrite/transforms.h"
#include "simd/kernels.h"
#include "sketch/sampling.h"
#include "sketch/sketch.h"
#include "support/batch.h"
#include "support/rng.h"
#include "tir/ops.h"

namespace {

using namespace felix;

const sketch::SymbolicSchedule &
denseSketch()
{
    static const auto sketches =
        sketch::generateSketches(tir::dense(512, 512, 512, true));
    return sketches[0];
}

std::vector<std::string>
varNames(const sketch::SymbolicSchedule &sched)
{
    std::vector<std::string> names;
    for (const auto &domain : sched.vars)
        names.push_back(domain.name);
    return names;
}

/** The exact-feature ranking tape (forward-only optimizer passes). */
const expr::CompiledExprs &
featureTape()
{
    static const expr::CompiledExprs compiled(
        features::extractFeatures(denseSketch().program),
        varNames(denseSketch()), /*forward_only=*/true);
    return compiled;
}

/**
 * The smoothed log-space descent tape, built exactly the way the
 * gradient search builds its objective (gradient-safe optimizer
 * passes only).
 */
const expr::CompiledExprs &
objectiveTape()
{
    static const expr::CompiledExprs compiled = [] {
        const auto &sched = denseSketch();
        auto names = varNames(sched);
        std::vector<expr::Expr> outputs;
        for (const expr::Expr &feature :
             features::extractFeatures(sched.program)) {
            expr::Expr smooth = rewrite::makeSmooth(
                feature, rewrite::Kernel::Algebraic);
            expr::Expr logged = rewrite::logExpand(smooth);
            logged = rewrite::expSubstituteVars(logged, names);
            outputs.push_back(rewrite::smoothMax0(
                logged, rewrite::Kernel::Algebraic));
        }
        return expr::CompiledExprs(outputs, names);
    }();
    return compiled;
}

/**
 * SoA input rows: kBatchLanes valid schedule points, in x space for
 * the feature tape or log space for the objective tape.
 */
std::vector<double>
samplePoints(const expr::CompiledExprs &tape, bool log_space)
{
    Rng rng(42);
    constexpr size_t L = kBatchLanes;
    const size_t numVars = tape.numVars();
    std::vector<double> inputs(numVars * L);
    for (size_t l = 0; l < L; ++l) {
        auto x = sketch::sampleValid(denseSketch(), rng);
        for (size_t v = 0; v < numVars; ++v) {
            inputs[v * L + l] =
                log_space ? std::log(std::max(1.0, x[v])) : x[v];
        }
    }
    return inputs;
}

void
reportTapeCounters(benchmark::State &state,
                   const expr::CompiledExprs &tape, double points)
{
    state.counters["instrs_raw"] =
        static_cast<double>(tape.tapeSize());
    state.counters["instrs_optimized"] =
        static_cast<double>(tape.optimizedSize());
    state.counters["points_per_sec"] = benchmark::Counter(
        static_cast<double>(state.iterations()) * points,
        benchmark::Counter::kIsRate);
}

// ---- benchmark bodies -------------------------------------------

void
BM_TapeForwardScalar(benchmark::State &state)
{
    const auto &tape = featureTape();
    constexpr size_t L = kBatchLanes;
    auto inputs = samplePoints(tape, false);
    expr::EvalState evalState;
    std::vector<double> x(tape.numVars()), out;
    size_t lane = 0;
    for (auto _ : state) {
        for (size_t v = 0; v < tape.numVars(); ++v)
            x[v] = inputs[v * L + lane];
        tape.forward(x, out, evalState);
        benchmark::DoNotOptimize(out.data());
        lane = (lane + 1) % L;
    }
    reportTapeCounters(state, tape, 1.0);
}

void
BM_TapeForwardBatch(benchmark::State &state)
{
    const auto &tape = featureTape();
    constexpr size_t L = kBatchLanes;
    auto inputs = samplePoints(tape, false);
    expr::BatchEvalState evalState;
    std::vector<double> outputs(tape.numOutputs() * L);
    for (auto _ : state) {
        tape.forwardBatch(inputs.data(), L, outputs.data(),
                          evalState);
        benchmark::DoNotOptimize(outputs.data());
    }
    reportTapeCounters(state, tape, static_cast<double>(L));
}

void
BM_TapeForwardBackwardScalar(benchmark::State &state)
{
    const auto &tape = objectiveTape();
    constexpr size_t L = kBatchLanes;
    auto inputs = samplePoints(tape, true);
    expr::EvalState evalState;
    std::vector<double> x(tape.numVars()), out;
    std::vector<double> seeds(tape.numOutputs(), 1.0), grad;
    size_t lane = 0;
    for (auto _ : state) {
        for (size_t v = 0; v < tape.numVars(); ++v)
            x[v] = inputs[v * L + lane];
        tape.forward(x, out, evalState);
        tape.backward(seeds, grad, evalState);
        benchmark::DoNotOptimize(grad.data());
        lane = (lane + 1) % L;
    }
    reportTapeCounters(state, tape, 1.0);
}

void
BM_TapeForwardBackwardBatch(benchmark::State &state)
{
    const auto &tape = objectiveTape();
    constexpr size_t L = kBatchLanes;
    auto inputs = samplePoints(tape, true);
    expr::BatchEvalState evalState;
    std::vector<double> outputs(tape.numOutputs() * L);
    std::vector<double> seeds(tape.numOutputs() * L, 1.0);
    std::vector<double> grads(tape.numVars() * L);
    for (auto _ : state) {
        tape.forwardBatch(inputs.data(), L, outputs.data(),
                          evalState);
        tape.backwardBatch(seeds.data(), grads.data(), evalState);
        benchmark::DoNotOptimize(grads.data());
    }
    reportTapeCounters(state, tape, static_cast<double>(L));
}

void
BM_MlpForwardBatch(benchmark::State &state)
{
    Rng rng(7);
    costmodel::MlpConfig config;   // default 82-input network
    costmodel::Mlp mlp(config, rng);
    costmodel::MlpBatchScratch scratch;
    constexpr size_t L = kBatchLanes;
    std::vector<double> x(82 * L);
    for (double &v : x)
        v = rng.uniform(-2.0, 2.0);
    double y[kBatchLanes];
    for (auto _ : state) {
        mlp.forwardBatch(x.data(), y, scratch);
        benchmark::DoNotOptimize(&y[0]);
    }
    state.counters["points_per_sec"] = benchmark::Counter(
        static_cast<double>(state.iterations()) *
            static_cast<double>(L),
        benchmark::Counter::kIsRate);
}

void
BM_MlpInputGradScalar(benchmark::State &state)
{
    Rng rng(7);
    costmodel::MlpConfig config;
    costmodel::Mlp mlp(config, rng);
    costmodel::MlpScratch scratch;
    std::vector<double> x(82);
    for (double &v : x)
        v = rng.uniform(-2.0, 2.0);
    std::vector<double> dx;
    for (auto _ : state) {
        double y = mlp.forwardInputGrad(x, dx, scratch);
        benchmark::DoNotOptimize(y);
        benchmark::DoNotOptimize(dx.data());
    }
    state.counters["points_per_sec"] = benchmark::Counter(
        static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}

void
BM_MlpInputGradBatch(benchmark::State &state)
{
    Rng rng(7);
    costmodel::MlpConfig config;
    costmodel::Mlp mlp(config, rng);
    costmodel::MlpBatchScratch scratch;
    constexpr size_t L = kBatchLanes;
    std::vector<double> x(82 * L);
    for (double &v : x)
        v = rng.uniform(-2.0, 2.0);
    double y[kBatchLanes];
    std::vector<double> dx(82 * L);
    for (auto _ : state) {
        mlp.forwardInputGradBatch(x.data(), y, dx.data(), scratch);
        benchmark::DoNotOptimize(dx.data());
    }
    state.counters["points_per_sec"] = benchmark::Counter(
        static_cast<double>(state.iterations()) *
            static_cast<double>(L),
        benchmark::Counter::kIsRate);
}

/**
 * A quickly fitted cost model for the end-to-end step benchmarks.
 * The weights' values don't matter for throughput; what matters is
 * that the scaler is fitted for 82 features so the production
 * predict paths (and FusedGradStep) accept it.
 */
const costmodel::CostModel &
benchModel()
{
    static const costmodel::CostModel model = [] {
        Rng rng(13);
        std::vector<costmodel::Sample> samples(64);
        for (auto &sample : samples) {
            sample.rawFeatures.resize(82);
            for (double &v : sample.rawFeatures)
                v = rng.uniform(0.0, 1e6);
            sample.latencySec = rng.uniform(1e-5, 1e-2);
        }
        costmodel::CostModel m(costmodel::MlpConfig{}, 5);
        m.fit(samples, /*epochs=*/2, /*batch_size=*/32, 1e-3);
        return m;
    }();
    return model;
}

/**
 * End-to-end surrogate descent step (Algorithm 1 lines 15-18): tape
 * forward -> MLP score + input gradient -> tape backward -> per-seed
 * Adam update. This is the loop body GradientSearch::round runs
 * nSteps times per seed; rounding-to-valid is excluded (it runs on
 * visited points, not inside the descent step). Counter steps_per_sec
 * is per-seed steps (batched variants advance kBatchLanes seeds per
 * iteration). Iterates drift under repeated stepping, so lanes reset
 * to the sampled points every 128 steps to keep the workload in the
 * numeric range the real search sees.
 */
void
BM_GradSearchStepScalar(benchmark::State &state)
{
    const auto &tape = objectiveTape();
    const auto &model = benchModel();
    constexpr size_t L = kBatchLanes;
    const size_t numVars = tape.numVars();
    const size_t numFeatures = tape.numOutputs();
    const auto init = samplePoints(tape, true);
    expr::EvalState evalState;
    std::vector<double> y(numVars);
    optim::Adam adam(numVars);
    std::vector<double> outputs, outputGrads, inputGrads, modelGrad;
    std::vector<double> modelInputs(numFeatures);
    size_t iter = 0;
    for (auto _ : state) {
        if ((iter++ & 127) == 0)
            for (size_t v = 0; v < numVars; ++v)
                y[v] = init[v * L];
        tape.forward(y, outputs, evalState);
        for (size_t k = 0; k < numFeatures; ++k)
            modelInputs[k] = outputs[k];
        const double score = model.predictTransformedWithGrad(
            modelInputs, modelGrad);
        benchmark::DoNotOptimize(score);
        outputGrads.assign(outputs.size(), 0.0);
        for (size_t k = 0; k < numFeatures; ++k)
            outputGrads[k] = -modelGrad[k];
        tape.backward(outputGrads, inputGrads, evalState);
        adam.step(y, inputGrads);
    }
    state.counters["steps_per_sec"] = benchmark::Counter(
        static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}

void
gradSearchStepBatchImpl(benchmark::State &state, bool fused,
                        bool useJit)
{
    const auto &tape = objectiveTape();
    const auto &model = benchModel();
    constexpr size_t L = kBatchLanes;
    const size_t numVars = tape.numVars();
    const size_t numFeatures = tape.numOutputs();
    const auto init = samplePoints(tape, true);
    const bool jitDefault = jit::enabled();
    jit::setEnabled(useJit);
    expr::BatchEvalState evalState;
    costmodel::PredictScratch predict;
    costmodel::FusedGradStep step(tape, model, numFeatures,
                                  /*numPenalties=*/0,
                                  /*lambda=*/10.0);
    std::vector<double> inputs = init;
    std::vector<double> outputs(numFeatures * L);
    std::vector<double> outputGrads(numFeatures * L);
    std::vector<double> modelGrads(numFeatures * L);
    std::vector<double> inputGrads(numVars * L);
    std::vector<double> laneGrad(numVars), yLane(numVars);
    double scores[kBatchLanes];
    std::vector<optim::Adam> adams;
    adams.reserve(L);
    for (size_t l = 0; l < L; ++l)
        adams.emplace_back(numVars);
    size_t iter = 0;
    for (auto _ : state) {
        if ((iter++ & 127) == 0)
            inputs = init;
        if (fused) {
            step.run(inputs.data(), L, scores, inputGrads.data(),
                     evalState, predict);
        } else {
            tape.forwardBatch(inputs.data(), L, outputs.data(),
                              evalState);
            model.predictTransformedWithGradBatch(
                outputs.data(), scores, modelGrads.data(), predict);
            std::fill(outputGrads.begin(), outputGrads.end(), 0.0);
            for (size_t k = 0; k < numFeatures; ++k) {
                const size_t row = k * L;
                for (size_t l = 0; l < L; ++l)
                    outputGrads[row + l] = -modelGrads[row + l];
            }
            tape.backwardBatch(outputGrads.data(), inputGrads.data(),
                               evalState);
        }
        for (size_t l = 0; l < L; ++l) {
            for (size_t v = 0; v < numVars; ++v) {
                yLane[v] = inputs[v * L + l];
                laneGrad[v] = inputGrads[v * L + l];
            }
            adams[l].step(yLane, laneGrad);
            for (size_t v = 0; v < numVars; ++v)
                inputs[v * L + l] = yLane[v];
        }
        benchmark::DoNotOptimize(&scores[0]);
    }
    jit::setEnabled(jitDefault);
    state.counters["steps_per_sec"] = benchmark::Counter(
        static_cast<double>(state.iterations()) *
            static_cast<double>(L),
        benchmark::Counter::kIsRate);
    state.counters["jit_active"] =
        useJit && jit::supported() ? 1.0 : 0.0;
}

void
BM_GradSearchStepBatch(benchmark::State &state)
{
    gradSearchStepBatchImpl(state, /*fused=*/false, /*useJit=*/false);
}

void
BM_GradSearchStepFused(benchmark::State &state)
{
    gradSearchStepBatchImpl(state, /*fused=*/true, /*useJit=*/false);
}

void
BM_GradSearchStepFusedJit(benchmark::State &state)
{
    gradSearchStepBatchImpl(state, /*fused=*/true, /*useJit=*/true);
}

void
BM_AdamStep(benchmark::State &state)
{
    // A parameter vector the size of the default cost model's first
    // layer (82x256 weights), a realistic Adam workload.
    Rng rng(11);
    const size_t n = 82 * 256;
    std::vector<double> x(n), g(n);
    for (size_t i = 0; i < n; ++i) {
        x[i] = rng.uniform(-1.0, 1.0);
        g[i] = rng.uniform(-0.1, 0.1);
    }
    optim::Adam adam(n);
    for (auto _ : state) {
        adam.step(x, g);
        benchmark::DoNotOptimize(x.data());
    }
    state.counters["params_per_sec"] = benchmark::Counter(
        static_cast<double>(state.iterations()) *
            static_cast<double>(n),
        benchmark::Counter::kIsRate);
}

// ---- per-width registration and JSON capture --------------------

/** simd_width / backend attached to each registered benchmark. */
struct BenchTag
{
    int simdWidth;         // 0 = per-point scalar engine (no SIMD)
    std::string backend;   // dispatch backend name, "" for scalar
};
std::map<std::string, BenchTag> g_tags;

/**
 * Register `fn` once per SIMD backend this build AND this CPU
 * support; each variant pins the dispatch override before running.
 * The console/JSON name carries the backend, e.g.
 * "tape_forward/batch/simd=avx512".
 */
void
registerWidthVariants(const std::string &base,
                      void (*fn)(benchmark::State &))
{
    for (int w : simd::availableWidths()) {
        if (!simd::setPreferredWidth(w))
            continue;   // compiled in, but the CPU lacks it
        const std::string backend = simd::activeBackendName();
        const std::string name = base + "/simd=" + backend;
        g_tags[name] = {w, backend};
        benchmark::RegisterBenchmark(
            name.c_str(), [fn, w](benchmark::State &st) {
                simd::setPreferredWidth(w);
                fn(st);
            });
    }
    simd::setPreferredWidth(0);
}

void
registerScalarEngine(const std::string &name,
                     void (*fn)(benchmark::State &))
{
    g_tags[name] = {0, ""};
    benchmark::RegisterBenchmark(
        name.c_str(), [fn](benchmark::State &st) {
            // The per-point engine is SIMD-independent, but pin the
            // default backend anyway so a preceding variant's
            // override can't leak in.
            simd::setPreferredWidth(0);
            fn(st);
        });
}

/** One captured benchmark run for the JSON report. */
struct CapturedRun
{
    std::string name;
    double realTimeNs;
    std::map<std::string, double> counters;
};
std::vector<CapturedRun> g_runs;

/** Console output plus capture for BENCH_tape.json. */
class CaptureReporter : public benchmark::ConsoleReporter
{
  public:
    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &run : runs) {
            if (run.error_occurred)
                continue;
            CapturedRun captured;
            captured.name = run.benchmark_name();
            captured.realTimeNs = run.GetAdjustedRealTime();
            for (const auto &entry : run.counters)
                captured.counters[entry.first] = entry.second.value;
            g_runs.push_back(std::move(captured));
        }
        ConsoleReporter::ReportRuns(runs);
    }
};

bool
writeJson(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "bench_tape: cannot write %s\n",
                     path.c_str());
        return false;
    }
    std::string out;
    out += "{\n  \"bench\": \"tape\",\n";
    out += "  \"batch_lanes\": " +
           std::to_string(static_cast<int>(kBatchLanes)) + ",\n";
    out += "  \"default_backend\": " +
           std::string("\"") + simd::activeBackendName() + "\",\n";
    out += "  \"results\": [\n";
    for (size_t i = 0; i < g_runs.size(); ++i) {
        const CapturedRun &run = g_runs[i];
        const BenchTag tag = g_tags.count(run.name)
                                 ? g_tags[run.name]
                                 : BenchTag{0, ""};
        out += "    {\"name\": " + obs::jsonEscape(run.name) +
               ", \"simd_width\": " + std::to_string(tag.simdWidth) +
               ", \"backend\": " + obs::jsonEscape(tag.backend) +
               ", \"real_time_ns\": " + obs::jsonNumber(run.realTimeNs);
        for (const auto &counter : run.counters)
            out += ", " + obs::jsonEscape(counter.first) + ": " +
                   obs::jsonNumber(counter.second);
        out += i + 1 < g_runs.size() ? "},\n" : "}\n";
    }
    out += "  ]\n}\n";
    const bool ok = std::fwrite(out.data(), 1, out.size(), f) ==
                    out.size();
    std::fclose(f);
    if (ok)
        std::printf("wrote %s\n", path.c_str());
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string jsonPath = "BENCH_tape.json";
    // Peel off --json-out=FILE before google-benchmark sees argv.
    int argOut = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--json-out=", 11) == 0)
            jsonPath = argv[i] + 11;
        else
            argv[argOut++] = argv[i];
    }
    argc = argOut;

    registerScalarEngine("tape_forward/scalar", BM_TapeForwardScalar);
    registerWidthVariants("tape_forward/batch", BM_TapeForwardBatch);
    registerScalarEngine("tape_fwd_bwd/scalar",
                         BM_TapeForwardBackwardScalar);
    registerWidthVariants("tape_fwd_bwd/batch",
                          BM_TapeForwardBackwardBatch);
    registerWidthVariants("mlp_forward/batch", BM_MlpForwardBatch);
    registerScalarEngine("mlp_input_grad/scalar",
                         BM_MlpInputGradScalar);
    registerWidthVariants("mlp_input_grad/batch",
                          BM_MlpInputGradBatch);
    registerWidthVariants("adam_step", BM_AdamStep);
    registerScalarEngine("grad_search_step/scalar",
                         BM_GradSearchStepScalar);
    registerWidthVariants("grad_search_step/batch",
                          BM_GradSearchStepBatch);
    registerWidthVariants("grad_search_step/fused",
                          BM_GradSearchStepFused);
    registerWidthVariants("grad_search_step/fused_jit",
                          BM_GradSearchStepFusedJit);

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    CaptureReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();
    simd::setPreferredWidth(0);
    return writeJson(jsonPath) ? 0 : 1;
}
