/**
 * @file
 * Tape-engine throughput microbenchmark: points/second through a
 * production feature tape (a dense-matmul sketch's 82 feature
 * formulas), scalar vs. batched SoA, forward-only and
 * forward+backward, plus the batched MLP inference the points feed.
 * Instruction counts before/after the tape optimizer are reported
 * as counters. Results are recorded in EXPERIMENTS.md; the batched
 * path must clear 2x the scalar points/sec.
 */
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "costmodel/mlp.h"
#include "expr/compiled.h"
#include "features/features.h"
#include "rewrite/smoothing.h"
#include "rewrite/transforms.h"
#include "sketch/sampling.h"
#include "sketch/sketch.h"
#include "support/batch.h"
#include "support/rng.h"
#include "tir/ops.h"

namespace {

using namespace felix;

const sketch::SymbolicSchedule &
denseSketch()
{
    static const auto sketches =
        sketch::generateSketches(tir::dense(512, 512, 512, true));
    return sketches[0];
}

std::vector<std::string>
varNames(const sketch::SymbolicSchedule &sched)
{
    std::vector<std::string> names;
    for (const auto &domain : sched.vars)
        names.push_back(domain.name);
    return names;
}

/** The exact-feature ranking tape (forward-only optimizer passes). */
const expr::CompiledExprs &
featureTape()
{
    static const expr::CompiledExprs compiled(
        features::extractFeatures(denseSketch().program),
        varNames(denseSketch()), /*forward_only=*/true);
    return compiled;
}

/**
 * The smoothed log-space descent tape, built exactly the way the
 * gradient search builds its objective (gradient-safe optimizer
 * passes only).
 */
const expr::CompiledExprs &
objectiveTape()
{
    static const expr::CompiledExprs compiled = [] {
        const auto &sched = denseSketch();
        auto names = varNames(sched);
        std::vector<expr::Expr> outputs;
        for (const expr::Expr &feature :
             features::extractFeatures(sched.program)) {
            expr::Expr smooth = rewrite::makeSmooth(
                feature, rewrite::Kernel::Algebraic);
            expr::Expr logged = rewrite::logExpand(smooth);
            logged = rewrite::expSubstituteVars(logged, names);
            outputs.push_back(rewrite::smoothMax0(
                logged, rewrite::Kernel::Algebraic));
        }
        return expr::CompiledExprs(outputs, names);
    }();
    return compiled;
}

/**
 * SoA input rows: kBatchLanes valid schedule points, in x space for
 * the feature tape or log space for the objective tape.
 */
std::vector<double>
samplePoints(const expr::CompiledExprs &tape, bool log_space)
{
    Rng rng(42);
    constexpr size_t L = kBatchLanes;
    const size_t numVars = tape.numVars();
    std::vector<double> inputs(numVars * L);
    for (size_t l = 0; l < L; ++l) {
        auto x = sketch::sampleValid(denseSketch(), rng);
        for (size_t v = 0; v < numVars; ++v) {
            inputs[v * L + l] =
                log_space ? std::log(std::max(1.0, x[v])) : x[v];
        }
    }
    return inputs;
}

void
reportTapeCounters(benchmark::State &state,
                   const expr::CompiledExprs &tape)
{
    state.counters["instrs_raw"] =
        static_cast<double>(tape.tapeSize());
    state.counters["instrs_optimized"] =
        static_cast<double>(tape.optimizedSize());
    state.counters["points_per_sec"] = benchmark::Counter(
        static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}

void
BM_TapeForwardScalar(benchmark::State &state)
{
    const auto &tape = featureTape();
    constexpr size_t L = kBatchLanes;
    auto inputs = samplePoints(tape, false);
    expr::EvalState evalState;
    std::vector<double> x(tape.numVars()), out;
    size_t lane = 0;
    for (auto _ : state) {
        for (size_t v = 0; v < tape.numVars(); ++v)
            x[v] = inputs[v * L + lane];
        tape.forward(x, out, evalState);
        benchmark::DoNotOptimize(out.data());
        lane = (lane + 1) % L;
    }
    reportTapeCounters(state, tape);
}
BENCHMARK(BM_TapeForwardScalar);

void
BM_TapeForwardBatch(benchmark::State &state)
{
    const auto &tape = featureTape();
    constexpr size_t L = kBatchLanes;
    auto inputs = samplePoints(tape, false);
    expr::BatchEvalState evalState;
    std::vector<double> outputs(tape.numOutputs() * L);
    for (auto _ : state) {
        tape.forwardBatch(inputs.data(), L, outputs.data(),
                          evalState);
        benchmark::DoNotOptimize(outputs.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(L));
    state.counters["instrs_raw"] =
        static_cast<double>(tape.tapeSize());
    state.counters["instrs_optimized"] =
        static_cast<double>(tape.optimizedSize());
    state.counters["points_per_sec"] = benchmark::Counter(
        static_cast<double>(state.iterations()) *
            static_cast<double>(L),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TapeForwardBatch);

void
BM_TapeForwardBackwardScalar(benchmark::State &state)
{
    const auto &tape = objectiveTape();
    constexpr size_t L = kBatchLanes;
    auto inputs = samplePoints(tape, true);
    expr::EvalState evalState;
    std::vector<double> x(tape.numVars()), out;
    std::vector<double> seeds(tape.numOutputs(), 1.0), grad;
    size_t lane = 0;
    for (auto _ : state) {
        for (size_t v = 0; v < tape.numVars(); ++v)
            x[v] = inputs[v * L + lane];
        tape.forward(x, out, evalState);
        tape.backward(seeds, grad, evalState);
        benchmark::DoNotOptimize(grad.data());
        lane = (lane + 1) % L;
    }
    reportTapeCounters(state, tape);
}
BENCHMARK(BM_TapeForwardBackwardScalar);

void
BM_TapeForwardBackwardBatch(benchmark::State &state)
{
    const auto &tape = objectiveTape();
    constexpr size_t L = kBatchLanes;
    auto inputs = samplePoints(tape, true);
    expr::BatchEvalState evalState;
    std::vector<double> outputs(tape.numOutputs() * L);
    std::vector<double> seeds(tape.numOutputs() * L, 1.0);
    std::vector<double> grads(tape.numVars() * L);
    for (auto _ : state) {
        tape.forwardBatch(inputs.data(), L, outputs.data(),
                          evalState);
        tape.backwardBatch(seeds.data(), grads.data(), evalState);
        benchmark::DoNotOptimize(grads.data());
    }
    state.counters["instrs_raw"] =
        static_cast<double>(tape.tapeSize());
    state.counters["instrs_optimized"] =
        static_cast<double>(tape.optimizedSize());
    state.counters["points_per_sec"] = benchmark::Counter(
        static_cast<double>(state.iterations()) *
            static_cast<double>(L),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TapeForwardBackwardBatch);

void
BM_MlpInputGradScalar(benchmark::State &state)
{
    Rng rng(7);
    costmodel::MlpConfig config;   // default 82-input network
    costmodel::Mlp mlp(config, rng);
    costmodel::MlpScratch scratch;
    std::vector<double> x(82);
    for (double &v : x)
        v = rng.uniform(-2.0, 2.0);
    std::vector<double> dx;
    for (auto _ : state) {
        double y = mlp.forwardInputGrad(x, dx, scratch);
        benchmark::DoNotOptimize(y);
        benchmark::DoNotOptimize(dx.data());
    }
    state.counters["points_per_sec"] = benchmark::Counter(
        static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MlpInputGradScalar);

void
BM_MlpInputGradBatch(benchmark::State &state)
{
    Rng rng(7);
    costmodel::MlpConfig config;
    costmodel::Mlp mlp(config, rng);
    costmodel::MlpBatchScratch scratch;
    constexpr size_t L = kBatchLanes;
    std::vector<double> x(82 * L);
    for (double &v : x)
        v = rng.uniform(-2.0, 2.0);
    double y[kBatchLanes];
    std::vector<double> dx(82 * L);
    for (auto _ : state) {
        mlp.forwardInputGradBatch(x.data(), y, dx.data(), scratch);
        benchmark::DoNotOptimize(dx.data());
    }
    state.counters["points_per_sec"] = benchmark::Counter(
        static_cast<double>(state.iterations()) *
            static_cast<double>(L),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MlpInputGradBatch);

} // namespace

BENCHMARK_MAIN();
