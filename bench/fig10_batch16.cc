/**
 * @file
 * Figure 10 + Table 2b: Felix vs Ansor-TenSet at input batch size 16
 * on RTX A5000 — latency-vs-tuning-time curves and the 90/95/99%
 * time-to-milestone speedups. LLaMA is excluded (it does not fit in
 * GPU memory at batch 16, paper §6.4). Paper geomeans: 5.8x / 4.9x /
 * 2.6x.
 */
#include <cstdio>

#include "bench/common.h"
#include "support/math_util.h"
#include "support/string_util.h"

using namespace felix;
using namespace felix::bench;

int
main(int argc, char **argv)
{
    BenchOptions options = parseArgs(argc, argv);
    printHeader("Figure 10 / Table 2b: batch size 16 on RTX A5000",
                options);
    const double budget = defaultBudget(options);
    const int batch = 16;
    const sim::DeviceKind device = sim::DeviceKind::A5000;
    const double milestones[3] = {0.90, 0.95, 0.99};

    std::vector<std::vector<std::string>> rows;
    rows.push_back({"Network", "90%", "95%", "99%", "Felix final",
                    "Ansor final"});
    std::vector<double> geo[3];

    for (const models::NetworkSpec &spec :
         models::evaluationNetworks()) {
        if (!spec.runsAtBatch16)
            continue;   // LLaMA: out of memory at batch 16 (§6.4)
        auto felixTuner = tuneNetwork(spec, batch, device,
                                      felixOptions(options), budget,
                                      options);
        auto ansorTuner = tuneNetwork(spec, batch, device,
                                      ansorOptions(options), budget,
                                      options);
        const double bestAnsor = ansorTuner->networkLatency();

        // Curve summary (4 points each).
        std::printf("%s curves:\n", spec.name.c_str());
        for (const char *label : {"Felix", "Ansor"}) {
            const auto &timeline = (label[0] == 'F')
                                       ? felixTuner->timeline()
                                       : ansorTuner->timeline();
            std::printf("  %-6s", label);
            double best = timeline.front().networkLatencySec;
            size_t idx = 0;
            for (int p = 1; p <= 4; ++p) {
                double t = budget * p / 4.0;
                while (idx < timeline.size() &&
                       timeline[idx].timeSec <= t) {
                    best = timeline[idx].networkLatencySec;
                    ++idx;
                }
                std::printf(" (%5.0fs, %9.3fms)", t, best * 1e3);
            }
            std::printf("\n");
        }

        std::vector<std::string> row = {spec.name};
        for (int m = 0; m < 3; ++m) {
            double target = bestAnsor / milestones[m];
            double tFelix =
                timeToLatency(felixTuner->timeline(), target);
            double tAnsor =
                timeToLatency(ansorTuner->timeline(), target);
            if (tFelix > 0.0 && tAnsor > 0.0) {
                double speedup = tAnsor / std::max(tFelix, 1.0);
                row.push_back(fmtSpeedup(speedup));
                geo[m].push_back(speedup);
            } else {
                row.push_back("-");
            }
        }
        row.push_back(fmtMs(felixTuner->networkLatency()));
        row.push_back(fmtMs(bestAnsor));
        rows.push_back(std::move(row));
        std::fflush(stdout);
    }
    std::vector<std::string> geoRow = {"Geomean"};
    for (int m = 0; m < 3; ++m) {
        geoRow.push_back(geo[m].empty() ? "-"
                                        : fmtSpeedup(geomean(geo[m])));
    }
    geoRow.push_back("");
    geoRow.push_back("");
    rows.push_back(std::move(geoRow));
    std::printf("\n%s", renderTable(rows).c_str());
    std::printf("\npaper reference (geomean, batch 16): 5.8x / 4.9x "
                "/ 2.6x; Felix stays faster to converge when the\n"
                "batch size grows (§6.4).\n");
    return 0;
}
