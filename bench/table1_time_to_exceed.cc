/**
 * @file
 * Table 1: tuning time (virtual seconds) Felix takes to exceed the
 * performance of the best-performing vendor library on each network
 * and device (paper §6.1: between 144 s and 527 s, 413 s average;
 * asterisks where Felix only passes the second-best library).
 */
#include <cstdio>

#include "bench/common.h"
#include "support/string_util.h"

using namespace felix;
using namespace felix::bench;

int
main(int argc, char **argv)
{
    BenchOptions options = parseArgs(argc, argv);
    printHeader(
        "Table 1: tuning time for Felix to exceed the best library",
        options);
    const double budget = defaultBudget(options);
    const int batch = 1;

    std::vector<std::vector<std::string>> rows;
    rows.push_back({"Network", "RTX A5000", "A10G", "Xavier NX"});

    std::vector<double> allTimes;
    for (const models::NetworkSpec &spec :
         models::evaluationNetworks()) {
        if (spec.name == "R3d-18")
            continue;   // libraries stay ahead on 3d conv (Table 1
                        // omits it in the paper as well)
        std::vector<std::string> row = {spec.name};
        for (sim::DeviceKind device : sim::allDevices()) {
            if (!options.device.empty() &&
                sim::parseDevice(options.device) != device) {
                row.push_back("(skipped)");
                continue;
            }
            const sim::DeviceConfig &config = sim::deviceConfig(device);
            if (device == sim::DeviceKind::XavierNX &&
                !spec.runsOnXavier) {
                row.push_back("-");
                continue;
            }
            auto tasks = extractSubgraphs(spec.build(batch));
            double bestLib = frameworks::bestLibraryLatency(
                tasks, spec.name, config, batch);
            if (bestLib <= 0.0) {
                row.push_back("-");
                continue;
            }
            auto tuner = std::make_unique<tuner::GraphTuner>(
                tasks, modelFor(device, options), device,
                felixOptions(options));
            double reached = -1.0;
            while (tuner->clockNow() < budget) {
                tuner->tuneRounds(1);
                if (tuner->networkLatency() < bestLib) {
                    reached = tuner->clockNow();
                    break;
                }
            }
            if (reached < 0.0) {
                // Compare against the *second best* library, as the
                // paper does where Felix trails the leader slightly
                // (the asterisked Xavier NX entries).
                std::vector<double> lats;
                for (frameworks::Framework framework :
                     frameworks::allFrameworks()) {
                    if (frameworks::frameworkSupports(
                            framework, spec.name, device, batch)) {
                        lats.push_back(frameworks::networkLatency(
                            tasks, config, framework));
                    }
                }
                std::sort(lats.begin(), lats.end());
                if (lats.size() >= 2) {
                    double target = lats[1];
                    double t = timeToLatency(tuner->timeline(),
                                             target);
                    if (t >= 0.0) {
                        row.push_back(strformat("%.0f s*", t));
                        allTimes.push_back(t);
                        continue;
                    }
                }
                row.push_back("> budget");
            } else {
                row.push_back(strformat("%.0f s", reached));
                allTimes.push_back(reached);
            }
            std::fflush(stdout);
        }
        rows.push_back(std::move(row));
    }
    std::printf("%s", renderTable(rows).c_str());
    double sum = 0.0;
    for (double t : allTimes)
        sum += t;
    if (!allTimes.empty()) {
        std::printf("\naverage time to surpass a library: %.0f s "
                    "(paper: 144 s min, ~413 s average)\n",
                    sum / allTimes.size());
    }
    std::printf("* = second-best library passed (paper's asterisk "
                "convention)\n");
    return 0;
}
