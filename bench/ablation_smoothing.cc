/**
 * @file
 * Ablation: smoothing kernel choice (paper §3.3). Compares gradient
 * search driven by feature formulas smoothed with the algebraic
 * kernel 1/sqrt(1+t^2) (the paper's choice), a Gaussian(-logistic)
 * kernel, a Cauchy/bump kernel, and with NO smoothing (raw
 * select/min/max; the tape then only provides subgradients).
 *
 * Two metrics isolate the gradient quality from the
 * measure-and-finetune loop:
 *  - trajectory gain: mean predicted-score improvement from the
 *    first to the last step of each gradient-descent trajectory;
 *  - best simulated latency among the top-4 predicted candidates of
 *    one search round (a tight measurement budget).
 *
 * The paper motivates the algebraic kernel by its numerically
 * stabler, heavy-tailed gradients; the Gaussian's saturating tails
 * give (near-)zero gradients away from the kinks.
 */
#include <algorithm>
#include <cstdio>

#include "bench/common.h"
#include "optim/search.h"
#include "sim/gpu_model.h"
#include "support/math_util.h"
#include "support/string_util.h"

using namespace felix;
using namespace felix::bench;

namespace {

struct AblationResult
{
    double trajectoryGain = 0.0;
    double bestLatency = 0.0;
};

AblationResult
evaluate(const tir::SubgraphDef &subgraph,
         const optim::GradSearchOptions &grad,
         const costmodel::CostModel &model,
         const sim::DeviceConfig &device, uint64_t seed, int num_seeds)
{
    AblationResult result;
    for (int s = 0; s < num_seeds; ++s) {
        optim::GradientSearch search(subgraph, grad);
        Rng rng(seed + s);
        auto round = search.round(model, rng);
        const auto &scores = round.trace.visitedScores;
        double first = 0.0, last = 0.0;
        for (int i = 0; i < grad.nSeeds; ++i) {
            first += scores[static_cast<size_t>(i) * grad.nSteps];
            last += scores[static_cast<size_t>(i + 1) * grad.nSteps -
                           1];
        }
        result.trajectoryGain += (last - first) / grad.nSeeds;
        double best = 1e18;
        for (const auto &candidate : round.toMeasure) {
            best = std::min(best,
                            sim::kernelLatency(candidate.rawFeatures,
                                               device));
        }
        result.bestLatency += best;
    }
    result.trajectoryGain /= num_seeds;
    result.bestLatency /= num_seeds;
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions options = parseArgs(argc, argv);
    printHeader("Ablation: smoothing kernels vs no smoothing",
                options);
    const auto &device = sim::deviceConfig(sim::DeviceKind::A5000);
    auto model = modelFor(sim::DeviceKind::A5000, options);
    const int numSeeds = options.full ? 10 : 6;
    auto subgraph = tir::dense(512, 1024, 1024, true);

    struct Variant
    {
        const char *name;
        rewrite::Kernel kernel;
        bool smooth;
    };
    const Variant variants[] = {
        {"algebraic (paper)", rewrite::Kernel::Algebraic, true},
        {"gaussian", rewrite::Kernel::Gaussian, true},
        {"bump (cauchy)", rewrite::Kernel::Bump, true},
        {"no smoothing", rewrite::Kernel::Algebraic, false},
    };

    std::vector<std::vector<std::string>> rows;
    rows.push_back({"Variant", "trajectory gain", "best latency",
                    "(top-4 measured)"});
    for (const Variant &variant : variants) {
        optim::GradSearchOptions grad;
        grad.nSeeds = 8;
        grad.nSteps = 100;
        grad.nMeasure = 4;
        grad.kernel = variant.kernel;
        grad.applySmoothing = variant.smooth;
        auto result = evaluate(subgraph, grad, model, device,
                               options.seed + 100, numSeeds);
        rows.push_back({variant.name,
                        strformat("%+.3f", result.trajectoryGain),
                        fmtMs(result.bestLatency), ""});
        std::fflush(stdout);
    }
    std::printf("%s\n", renderTable(rows).c_str());
    std::printf(
        "expected: the algebraic kernel gives the largest trajectory "
        "gain and the best tight-budget quality;\nthe Gaussian's "
        "thin tails stall the descent away from the kinks (the "
        "paper's numerical-stability\nargument for phi(t) = "
        "1/sqrt(1+t^2)); no-smoothing loses the gradient signal at "
        "the discontinuities.\n");
    return 0;
}
