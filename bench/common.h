/**
 * @file
 * Shared infrastructure for the experiment harnesses: option
 * parsing (--full, --device, --budget, --seed), tuned-run helpers,
 * milestone computation, and table/series printing.
 *
 * Every harness regenerates one table or figure of the paper's
 * evaluation (see DESIGN.md §4). Default settings are scaled down to
 * finish on one CPU core in minutes; `--full` switches to the
 * paper-scale search parameters (Ansor population 2048 x 4
 * generations, longer tuning budgets).
 */
#ifndef FELIX_BENCH_COMMON_H_
#define FELIX_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "core/felix.h"
#include "frameworks/frameworks.h"
#include "models/models.h"
#include "tuner/tuner.h"

namespace felix {
namespace bench {

/** Parsed command-line options common to all harnesses. */
struct BenchOptions
{
    bool full = false;            ///< paper-scale settings
    double budgetSec = 0.0;       ///< virtual tuning budget override
    uint64_t seed = 1;
    int jobs = 0;                 ///< worker threads (0 = hardware)
    std::string device;           ///< restrict to one device ("")
    std::string cacheDir = "pretrained";
};

BenchOptions parseArgs(int argc, char **argv);

/** Tuner options for the Felix strategy under these bench options. */
tuner::TunerOptions felixOptions(const BenchOptions &options);

/** Tuner options for the Ansor-TenSet baseline. */
tuner::TunerOptions ansorOptions(const BenchOptions &options);

/** Default virtual tuning budget per (network, device) pair. */
double defaultBudget(const BenchOptions &options);

/** Devices selected by the options (all three by default). */
std::vector<sim::DeviceKind> selectedDevices(
    const BenchOptions &options);

/** Cached pretrained cost model for a device. */
costmodel::CostModel modelFor(sim::DeviceKind device,
                              const BenchOptions &options);

/**
 * Real (wall-clock) milliseconds spent per pipeline phase, read from
 * the telemetry metrics registry (src/obs/metrics.h). "Sketch"
 * covers sketch generation, "tapes" the feature-formula tape
 * compilation, "search" the candidate search rounds, "measure" the
 * simulated hardware measurements, and "finetune" the cost-model
 * updates.
 */
struct PhaseTimings
{
    double sketchMs = 0.0;
    double compileTapesMs = 0.0;
    double searchMs = 0.0;
    double measureMs = 0.0;
    double finetuneMs = 0.0;
};

/** Current cumulative per-phase timings from the metrics registry. */
PhaseTimings phaseTimings();

/** Difference of two snapshots (after - before). */
PhaseTimings phaseDelta(const PhaseTimings &before,
                        const PhaseTimings &after);

/** Print one "phases: ..." line for a tuning run's phase delta. */
void printPhaseBreakdown(const PhaseTimings &delta);

/**
 * Tune one network with the given strategy until the virtual budget
 * and return the tuner (timeline included). Reports the real time
 * spent per phase (sketch gen / search / measurement / fine-tune)
 * through the metrics registry rather than one end-to-end duration.
 */
std::unique_ptr<tuner::GraphTuner> tuneNetwork(
    const models::NetworkSpec &spec, int batch,
    sim::DeviceKind device, tuner::TunerOptions tuner_options,
    double budget_sec, const BenchOptions &options);

/**
 * First virtual time at which the timeline reaches a latency at or
 * below @p target_sec; negative when never reached.
 */
double timeToLatency(const std::vector<tuner::TimelinePoint> &timeline,
                     double target_sec);

/** Print a header naming the experiment and its settings. */
void printHeader(const std::string &title, const BenchOptions &options);

/** Format helpers. */
std::string fmtMs(double seconds);
std::string fmtSpeedup(double ratio);   ///< "3.4x" or "-" when <= 0

} // namespace bench
} // namespace felix

#endif // FELIX_BENCH_COMMON_H_
