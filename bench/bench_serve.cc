/**
 * @file
 * Serving-path microbenchmark: requests/second through a
 * ServeSession for cache hits (the steady-state fleet path: build
 * the request's graph, partition, hash, answer every subgraph from
 * the schedule cache) vs cache misses (cold subgraphs: sketch
 * generation, task registration, one initial measurement), plus the
 * daemon's bookkeeping in isolation — count-min sketch updates,
 * heavy-hitter heap updates, and traffic-weighted scheduler picks
 * over a large task table.
 *
 * Besides the console table, results are written machine-readable to
 * BENCH_serve.json in the working directory (override with
 * --json-out=FILE); datapoints are recorded in EXPERIMENTS.md. The
 * cached path must beat the uncached path by well over an order of
 * magnitude — that gap is the reason the daemon exists.
 */
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "costmodel/dataset.h"
#include "graph/graph.h"
#include "obs/json.h"
#include "serve/scheduler.h"
#include "serve/server.h"
#include "serve/traffic.h"
#include "support/rng.h"

namespace {

using namespace felix;

/** Small deterministic cost model (no pretrained cache needed). */
const costmodel::CostModel &
benchModel()
{
    static const costmodel::CostModel model = [] {
        costmodel::DatasetOptions options;
        options.numSubgraphs = 10;
        options.schedulesPerSketch = 48;
        options.seed = 7;
        auto samples = costmodel::synthesizeDataset(
            sim::deviceConfig(sim::DeviceKind::A5000), options);
        costmodel::MlpConfig config;
        config.layerSizes = {82, 64, 64, 1};
        costmodel::CostModel model(config, 7);
        model.fit(samples, 8, 128, 1.5e-3);
        return model;
    }();
    return model;
}

serve::ServeOptions
benchOptions()
{
    serve::ServeOptions options;
    options.tuner.seed = 3;
    options.tuner.grad.nSeeds = 4;
    options.tuner.grad.nSteps = 48;
    options.tuner.grad.nMeasure = 8;
    return options;
}

/** One single-op dense network; distinct @p k => distinct hash. */
std::vector<graph::Task>
denseTasks(int64_t k)
{
    graph::Graph g("bench");
    graph::DenseParams fc;
    fc.n = 64;
    fc.m = 256;
    fc.k = k;
    g.addDense(fc, -1, "bench_fc");
    return graph::partition(g);
}

/**
 * Steady state: every subgraph of the request is already cached.
 * The loop covers the whole request path — NDJSON parse, graph
 * build, partition, structural hash, cache lookup, response
 * formatting — with zero tuner work.
 */
void
BM_RequestCached(benchmark::State &state)
{
    serve::ServeSession session(benchOptions(), benchModel());
    const std::string line =
        R"({"op":"tune","network":"dcgan","batch":1})";
    std::string warm = session.handle(line);   // populate the cache
    int64_t subgraphs = 0;
    for (auto _ : state) {
        std::string response = session.handle(line);
        benchmark::DoNotOptimize(response);
        subgraphs += static_cast<int64_t>(session.cache().size());
    }
    state.counters["requests_per_s"] = benchmark::Counter(
        static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
    state.counters["subgraphs_per_s"] = benchmark::Counter(
        static_cast<double>(subgraphs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RequestCached)->Unit(benchmark::kMicrosecond);

/**
 * Cold path: every iteration requests a subgraph the daemon has
 * never seen (distinct dense reduction size), so each request pays
 * sketch generation, task registration, and one initial
 * measurement before the schedule is cached.
 */
void
BM_RequestUncached(benchmark::State &state)
{
    serve::ServeSession session(benchOptions(), benchModel());
    int64_t k = 17;
    for (auto _ : state) {
        state.PauseTiming();
        auto tasks = denseTasks(k);
        k += 2;   // odd sizes: every shape is new, none degenerate
        state.ResumeTiming();
        auto response = session.tune("bench", tasks);
        benchmark::DoNotOptimize(response);
    }
    state.counters["requests_per_s"] = benchmark::Counter(
        static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RequestUncached)->Unit(benchmark::kMillisecond);

/** Count-min sketch update throughput (per-request bookkeeping). */
void
BM_SketchAdd(benchmark::State &state)
{
    serve::CountMinSketch sketch;
    Rng rng(1);
    std::vector<uint64_t> keys(4096);
    for (uint64_t &key : keys)
        key = rng.next() % 512;
    size_t i = 0;
    for (auto _ : state) {
        sketch.add(keys[i++ & 4095]);
        benchmark::DoNotOptimize(sketch.total());
    }
    state.counters["updates_per_s"] = benchmark::Counter(
        static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SketchAdd);

/** Heavy-hitter heap update throughput at capacity (evictions). */
void
BM_HeavyHitterUpdate(benchmark::State &state)
{
    serve::HeavyHitters heap(16);
    Rng rng(2);
    std::vector<uint64_t> keys(4096);
    for (uint64_t &key : keys)
        key = rng.next() % 512;
    uint64_t count = 0;
    size_t i = 0;
    for (auto _ : state) {
        heap.update(keys[i++ & 4095], ++count);
        benchmark::DoNotOptimize(heap.minCount());
    }
    state.counters["updates_per_s"] = benchmark::Counter(
        static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_HeavyHitterUpdate);

/**
 * Scheduler overhead: one traffic-weighted pick over a task table
 * far larger than any real daemon accumulates. This is the fixed
 * cost added to every background round.
 */
void
BM_SchedulerPick(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    serve::CountMinSketch traffic;
    std::vector<serve::TaskStats> tasks(n);
    Rng rng(3);
    for (int i = 0; i < n; ++i) {
        tasks[i].hash = rng.next();
        tasks[i].bestLatencySec =
            1e-4 + 1e-6 * static_cast<double>(i);
        tasks[i].rounds = 1 + static_cast<int>(rng.next() % 4);
        tasks[i].stagnantRounds = static_cast<int>(rng.next() % 8);
        traffic.add(tasks[i].hash, 1 + rng.next() % 100);
    }
    for (auto _ : state) {
        int pick = serve::pickNextTask(tasks, traffic);
        benchmark::DoNotOptimize(pick);
    }
    state.counters["picks_per_s"] = benchmark::Counter(
        static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SchedulerPick)->Arg(64)->Arg(1024);

/** One captured benchmark run for the JSON report. */
struct CapturedRun
{
    std::string name;
    double realTimeNs;
    std::map<std::string, double> counters;
};
std::vector<CapturedRun> g_runs;

/** Console output plus capture for BENCH_serve.json. */
class CaptureReporter : public benchmark::ConsoleReporter
{
  public:
    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &run : runs) {
            if (run.error_occurred)
                continue;
            CapturedRun captured;
            captured.name = run.benchmark_name();
            captured.realTimeNs = run.GetAdjustedRealTime();
            for (const auto &entry : run.counters)
                captured.counters[entry.first] = entry.second.value;
            g_runs.push_back(std::move(captured));
        }
        ConsoleReporter::ReportRuns(runs);
    }
};

bool
writeJson(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "bench_serve: cannot write %s\n",
                     path.c_str());
        return false;
    }
    std::string out;
    out += "{\n  \"bench\": \"serve\",\n";
    out += "  \"results\": [\n";
    for (size_t i = 0; i < g_runs.size(); ++i) {
        const CapturedRun &run = g_runs[i];
        out += "    {\"name\": " + obs::jsonEscape(run.name) +
               ", \"real_time_ns\": " + obs::jsonNumber(run.realTimeNs);
        for (const auto &counter : run.counters)
            out += ", " + obs::jsonEscape(counter.first) + ": " +
                   obs::jsonNumber(counter.second);
        out += i + 1 < g_runs.size() ? "},\n" : "}\n";
    }
    out += "  ]\n}\n";
    const bool ok = std::fwrite(out.data(), 1, out.size(), f) ==
                    out.size();
    std::fclose(f);
    if (ok)
        std::printf("wrote %s\n", path.c_str());
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string jsonPath = "BENCH_serve.json";
    // Peel off --json-out=FILE before google-benchmark sees argv.
    int argOut = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--json-out=", 11) == 0)
            jsonPath = argv[i] + 11;
        else
            argv[argOut++] = argv[i];
    }
    argc = argOut;

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    CaptureReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();
    return writeJson(jsonPath) ? 0 : 1;
}
