/**
 * @file
 * Ablation: the gradient-stability rewrites (paper §3.3, "Gradient
 * stability") — logarithm of the features plus the exponential
 * variable substitution x = e^y. With the rewrites off, the search
 * optimizes raw tile sizes against features spanning 1e0..1e9;
 * Adam's normalization partially compensates, but the descent makes
 * visibly less progress per step and the tight-budget schedule
 * quality drops.
 *
 * Metrics as in ablation_smoothing: per-trajectory predicted-score
 * gain, plus the best simulated latency among the top-4 predicted
 * candidates of a single round.
 */
#include <algorithm>
#include <cstdio>

#include "bench/common.h"
#include "optim/search.h"
#include "sim/gpu_model.h"
#include "support/math_util.h"
#include "support/string_util.h"

using namespace felix;
using namespace felix::bench;

int
main(int argc, char **argv)
{
    BenchOptions options = parseArgs(argc, argv);
    printHeader("Ablation: log-feature + e^y substitution on/off",
                options);
    const auto &device = sim::deviceConfig(sim::DeviceKind::A5000);
    auto model = modelFor(sim::DeviceKind::A5000, options);
    const int numSeeds = options.full ? 10 : 6;
    auto subgraph = tir::dense(512, 1024, 1024, true);

    std::vector<std::vector<std::string>> rows;
    rows.push_back({"Variant", "trajectory gain", "best latency"});
    for (bool logExp : {true, false}) {
        optim::GradSearchOptions grad;
        grad.nSeeds = 8;
        grad.nSteps = 100;
        grad.nMeasure = 4;
        grad.applyLogExp = logExp;

        double gain = 0.0, bestLatency = 0.0;
        for (int s = 0; s < numSeeds; ++s) {
            optim::GradientSearch search(subgraph, grad);
            Rng rng(options.seed + 100 + s);
            auto round = search.round(model, rng);
            const auto &scores = round.trace.visitedScores;
            double first = 0.0, last = 0.0;
            for (int i = 0; i < grad.nSeeds; ++i) {
                first +=
                    scores[static_cast<size_t>(i) * grad.nSteps];
                last += scores[static_cast<size_t>(i + 1) *
                                   grad.nSteps -
                               1];
            }
            gain += (last - first) / grad.nSeeds;
            double best = 1e18;
            for (const auto &candidate : round.toMeasure) {
                best = std::min(
                    best, sim::kernelLatency(candidate.rawFeatures,
                                             device));
            }
            bestLatency += best;
        }
        rows.push_back({logExp ? "log + e^y substitution (paper)"
                               : "raw x-space optimization",
                        strformat("%+.3f", gain / numSeeds),
                        fmtMs(bestLatency / numSeeds)});
        std::fflush(stdout);
    }
    std::printf("%s\n", renderTable(rows).c_str());
    std::printf("expected: the paper's rewrites make each descent "
                "step more productive (larger trajectory gain)\n"
                "and yield better schedules under a tight "
                "measurement budget.\n");
    return 0;
}
