/**
 * @file
 * Table 2a: tuning speedup of Felix over Ansor-TenSet, measured as
 * the ratio of the time each takes to reach 90% / 95% / 99% of the
 * best Ansor performance (batch 1). The paper reports geomean
 * speedups of 5.0x/3.2x/2.0x (A5000), 2.5x/1.7x/1.4x (A10G) and
 * 3.2x/4.1x/2.3x (Xavier NX).
 */
#include <cstdio>

#include "bench/common.h"
#include "support/math_util.h"
#include "support/string_util.h"

using namespace felix;
using namespace felix::bench;

int
main(int argc, char **argv)
{
    BenchOptions options = parseArgs(argc, argv);
    printHeader("Table 2a: time-to-milestone speedup of Felix vs "
                "Ansor-TenSet (batch 1)",
                options);
    const double budget = defaultBudget(options);
    const int batch = 1;
    const double milestones[3] = {0.90, 0.95, 0.99};

    for (sim::DeviceKind device : selectedDevices(options)) {
        std::printf("--- %s ---\n",
                    sim::deviceConfig(device).name.c_str());
        std::vector<std::vector<std::string>> rows;
        rows.push_back({"Network", "90%", "95%", "99%"});
        std::vector<double> geo[3];

        for (const models::NetworkSpec &spec :
             models::evaluationNetworks()) {
            if (device == sim::DeviceKind::XavierNX &&
                !spec.runsOnXavier)
                continue;
            auto felixTuner =
                tuneNetwork(spec, batch, device,
                            felixOptions(options), budget, options);
            auto ansorTuner =
                tuneNetwork(spec, batch, device,
                            ansorOptions(options), budget, options);
            // Milestones are relative to the best Ansor performance
            // achieved in the whole search (paper Table 2 caption).
            const double bestAnsor = ansorTuner->networkLatency();
            std::vector<std::string> row = {spec.name};
            for (int m = 0; m < 3; ++m) {
                double target = bestAnsor / milestones[m];
                double tFelix =
                    timeToLatency(felixTuner->timeline(), target);
                double tAnsor =
                    timeToLatency(ansorTuner->timeline(), target);
                if (tFelix > 0.0 && tAnsor > 0.0) {
                    double speedup = tAnsor / std::max(tFelix, 1.0);
                    row.push_back(fmtSpeedup(speedup));
                    geo[m].push_back(speedup);
                } else {
                    row.push_back("-");
                }
            }
            rows.push_back(std::move(row));
            std::fflush(stdout);
        }
        std::vector<std::string> geoRow = {"Geomean"};
        for (int m = 0; m < 3; ++m) {
            geoRow.push_back(
                geo[m].empty() ? "-" : fmtSpeedup(geomean(geo[m])));
        }
        rows.push_back(std::move(geoRow));
        std::printf("%s\n", renderTable(rows).c_str());
        std::fflush(stdout);
    }
    std::printf("paper reference (geomean): A5000 5.0x/3.2x/2.0x, "
                "A10G 2.5x/1.7x/1.4x, Xavier NX 3.2x/4.1x/2.3x.\n");
    return 0;
}
