/**
 * @file
 * Ablation: cost-model capacity. The paper notes (§6.2) that the
 * cost model "does not need to perfectly reflect the empirical
 * performance" — a good-enough ranker suffices because the top
 * predicted schedules are measured anyway. This harness quantifies
 * that: cost models from linear to TenSet-sized MLPs are trained on
 * the same dataset, then compared on (a) ranking quality and (b) the
 * latency Felix reaches with each as its surrogate.
 */
#include <cstdio>

#include "bench/common.h"
#include "costmodel/dataset.h"
#include "optim/search.h"
#include "sim/gpu_model.h"
#include "support/math_util.h"
#include "support/string_util.h"

using namespace felix;
using namespace felix::bench;

int
main(int argc, char **argv)
{
    BenchOptions options = parseArgs(argc, argv);
    printHeader("Ablation: cost-model capacity", options);
    const auto &device = sim::deviceConfig(sim::DeviceKind::A5000);
    const int numSeeds = options.full ? 5 : 3;
    const int rounds = options.full ? 6 : 3;

    costmodel::DatasetOptions datasetOptions;
    datasetOptions.numSubgraphs = options.full ? 64 : 24;
    datasetOptions.schedulesPerSketch = options.full ? 96 : 48;
    datasetOptions.seed = options.seed + 1000;
    auto samples = costmodel::synthesizeDataset(device, datasetOptions);
    // Hold out 10% for validation.
    size_t split = samples.size() * 9 / 10;
    std::vector<costmodel::Sample> train(samples.begin(),
                                         samples.begin() + split);
    std::vector<costmodel::Sample> held(samples.begin() + split,
                                        samples.end());

    auto subgraph = tir::dense(512, 1024, 1024, true);

    struct Variant
    {
        const char *name;
        std::vector<int> layers;
    };
    const Variant variants[] = {
        {"linear", {82, 1}},
        {"tiny MLP", {82, 16, 1}},
        {"default MLP", {82, 128, 128, 64, 1}},
        {"TenSet-sized MLP", {82, 256, 256, 256, 1}},
    };

    std::vector<std::vector<std::string>> rows;
    rows.push_back({"Cost model", "params", "rank corr",
                    "search best latency"});
    for (const Variant &variant : variants) {
        costmodel::MlpConfig config;
        config.layerSizes = variant.layers;
        costmodel::CostModel model(config, options.seed);
        model.fit(train, options.full ? 16 : 8, 128, 1.5e-3);
        auto metrics = model.validate(held);

        std::vector<double> bests;
        for (int s = 0; s < numSeeds; ++s) {
            optim::GradSearchOptions grad;
            grad.nSeeds = 8;
            grad.nSteps = 100;
            optim::GradientSearch search(subgraph, grad);
            Rng rng(options.seed + s);
            double best = 1e18;
            for (int round = 0; round < rounds; ++round) {
                auto result = search.round(model, rng);
                for (const auto &candidate : result.toMeasure) {
                    best = std::min(
                        best, sim::kernelLatency(
                                  candidate.rawFeatures, device));
                }
            }
            bests.push_back(best);
        }

        Rng paramRng(1);
        costmodel::Mlp sizer(config, paramRng);
        rows.push_back({variant.name,
                        strformat("%zu", sizer.parameterCount()),
                        strformat("%.3f", metrics.rankCorrelation),
                        fmtMs(mean(bests))});
        std::fflush(stdout);
    }
    std::printf("%s\n", renderTable(rows).c_str());
    std::printf("expected: ranking quality saturates quickly with "
                "capacity, and even an imperfect ranker yields\n"
                "near-identical search results — the measured top-k "
                "filters the errors (paper §6.2).\n");
    return 0;
}
