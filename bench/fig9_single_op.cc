/**
 * @file
 * Figure 9: single-operator performance of Felix, Ansor, and the
 * manually-optimized libraries (PyTorch, TensorFlow) on RTX A5000,
 * normalized per operator to the best performer. Operators are taken
 * from the evaluated DNNs. Paper §6.3: Felix beats the libraries on
 * 7 of 8 operator types and matches Ansor everywhere; 3d convolution
 * is the exception where the hand-tuned libraries win.
 */
#include <cstdio>

#include "bench/common.h"
#include "support/string_util.h"

using namespace felix;
using namespace felix::bench;

int
main(int argc, char **argv)
{
    BenchOptions options = parseArgs(argc, argv);
    printHeader("Figure 9: single-operator performance on RTX A5000",
                options);
    const sim::DeviceKind device = sim::DeviceKind::A5000;
    const sim::DeviceConfig &config = sim::deviceConfig(device);
    const int rounds = options.full ? 40 : 16;

    struct Case
    {
        const char *name;
        graph::Task task;
    };
    std::vector<Case> cases;
    {
        // ResNet-50 conv: 3x3, 128ch, 28x28.
        tir::Conv2dConfig conv;
        conv.c = 128;
        conv.h = conv.w = 28;
        conv.k = 128;
        conv.bias = true;
        conv.epilogue = tir::Epilogue::Relu;
        cases.push_back(
            {"Conv2d", {tir::conv2d(conv), graph::OpType::Conv2d, 1,
                        "conv2d"}});
        // DCGAN transposed conv.
        tir::TConv2dConfig tconv;
        tconv.c = 256;
        tconv.h = tconv.w = 8;
        tconv.k = 128;
        tconv.stride = 2;
        tconv.pad = 1;
        cases.push_back({"TConv2d",
                         {tir::tconv2d(tconv), graph::OpType::TConv2d,
                          1, "tconv2d"}});
        // R3d-18 conv3d (layer3-style: compute-bound, the libraries'
        // best case).
        tir::Conv3dConfig conv3;
        conv3.c = 128;
        conv3.d = 8;
        conv3.h = conv3.w = 28;
        conv3.k = 128;
        cases.push_back({"Conv3d",
                         {tir::conv3d(conv3), graph::OpType::Conv3d, 1,
                          "conv3d"}});
        // ViT MLP dense.
        cases.push_back({"Dense",
                         {tir::dense(50, 3072, 768, true),
                          graph::OpType::Dense, 1, "dense"}});
        // ViT attention batched matmul.
        cases.push_back({"BatchMatmul",
                         {tir::batchMatmul(12, 50, 50, 64),
                          graph::OpType::BatchMatmul, 1, "bmm"}});
        // ViT attention softmax.
        cases.push_back({"Softmax",
                         {tir::softmax(600, 50),
                          graph::OpType::Softmax, 1, "softmax"}});
        // ResNet stem max-pool.
        cases.push_back({"MaxPool",
                         {tir::maxPool2d(1, 64, 112, 112, 2, 2),
                          graph::OpType::MaxPool2d, 1, "maxpool"}});
    }

    std::vector<std::vector<std::string>> rows;
    rows.push_back({"Operator", "PyTorch", "TensorFlow", "Felix",
                    "Ansor", "Felix latency"});
    int felixBeatsLibraries = 0;
    for (Case &c : cases) {
        double pt = frameworks::libraryTaskLatency(
            c.task, config, frameworks::Framework::PyTorch);
        double tf = frameworks::libraryTaskLatency(
            c.task, config, frameworks::Framework::TensorFlow);

        tuner::GraphTuner felixTuner({c.task},
                                     modelFor(device, options), device,
                                     felixOptions(options));
        felixTuner.tuneRounds(rounds);
        double fx = felixTuner.taskRecords()[0].bestLatencySec;

        tuner::GraphTuner ansorTuner({c.task},
                                     modelFor(device, options), device,
                                     ansorOptions(options));
        ansorTuner.tuneRounds(rounds);
        double an = ansorTuner.taskRecords()[0].bestLatencySec;

        double best = std::min(std::min(pt, tf), std::min(fx, an));
        rows.push_back({c.name, strformat("%.2f", best / pt),
                        strformat("%.2f", best / tf),
                        strformat("%.2f", best / fx),
                        strformat("%.2f", best / an), fmtMs(fx)});
        if (fx < pt && fx < tf)
            ++felixBeatsLibraries;
        std::fflush(stdout);
    }
    std::printf("%s\n", renderTable(rows).c_str());
    std::printf("Felix beats both libraries on %d of %zu operators "
                "(paper: 7 of 8, 3d convolution excepted).\n",
                felixBeatsLibraries, cases.size());
    return 0;
}
