/**
 * @file
 * Figure 8: predicted performance of the candidate-schedule
 * population as the search progresses, Felix (gradient) vs Ansor
 * (evolutionary), on three subgraphs taken from the evaluated DNNs:
 * Conv2d, Conv3d and Dense. For each tool it prints the best and
 * k-th-best predicted score after n schedules searched — the paper's
 * headline: Felix's population concentrates near its best (a barely
 * visible band) while Ansor's spread stays wide.
 */
#include <algorithm>
#include <cstdio>

#include "bench/common.h"
#include "evolutionary/evolutionary.h"
#include "optim/search.h"
#include "support/string_util.h"

using namespace felix;
using namespace felix::bench;

namespace {

struct SeriesPoint
{
    int searched;
    double best;
    double kth;
};

std::vector<SeriesPoint>
populationSeries(const std::vector<double> &visited, int k, int points)
{
    std::vector<SeriesPoint> series;
    std::vector<double> sorted;
    const int stride =
        std::max<int>(1, static_cast<int>(visited.size()) / points);
    for (int n = stride; n <= static_cast<int>(visited.size());
         n += stride) {
        sorted.assign(visited.begin(), visited.begin() + n);
        std::sort(sorted.begin(), sorted.end(), std::greater<>());
        sorted.erase(std::unique(sorted.begin(), sorted.end()),
                     sorted.end());
        SeriesPoint point;
        point.searched = n;
        point.best = sorted[0];
        point.kth =
            sorted[std::min<size_t>(sorted.size() - 1, k)];
        series.push_back(point);
    }
    return series;
}

void
printSeries(const char *label, const std::vector<SeriesPoint> &series)
{
    std::printf("  %-20s", label);
    for (const SeriesPoint &point : series) {
        std::printf(" [n=%4d best=%6.2f k-th=%6.2f]", point.searched,
                    point.best, point.kth);
    }
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions options = parseArgs(argc, argv);
    printHeader("Figure 8: predicted performance of the searched "
                "population, Felix vs Ansor",
                options);

    struct Case { const char *name; tir::SubgraphDef subgraph; };
    tir::Conv2dConfig conv2dConfig;
    conv2dConfig.c = 128;
    conv2dConfig.h = conv2dConfig.w = 28;
    conv2dConfig.k = 128;
    conv2dConfig.bias = true;
    conv2dConfig.epilogue = tir::Epilogue::Relu;
    tir::Conv3dConfig conv3dConfig;
    conv3dConfig.c = 64;
    conv3dConfig.d = 8;
    conv3dConfig.h = conv3dConfig.w = 28;
    conv3dConfig.k = 64;
    std::vector<Case> cases;
    cases.push_back({"Conv2d", tir::conv2d(conv2dConfig)});
    cases.push_back({"Conv3d", tir::conv3d(conv3dConfig)});
    cases.push_back({"Dense", tir::dense(512, 1024, 1024, true)});

    auto model = modelFor(sim::DeviceKind::A5000, options);
    // Equal numbers of schedules searched for both tools; the k-th
    // rank mirrors the paper's 64-of-8192 proportion.
    const int searchBudget = options.full ? 8192 : 2048;
    const int kth = options.full ? 64 : 16;

    for (Case &c : cases) {
        std::printf("%s:\n", c.name);
        Rng rngA(options.seed), rngB(options.seed);

        optim::GradSearchOptions gradOptions;
        gradOptions.nSeeds = 8;
        gradOptions.nSteps = searchBudget / gradOptions.nSeeds;
        optim::GradientSearch grad(c.subgraph, gradOptions);
        auto gradRound = grad.round(model, rngA);
        printSeries("Felix (gradient)",
                    populationSeries(gradRound.trace.visitedScores,
                                     kth, 4));

        evolutionary::EvoSearchOptions evoOptions;
        evoOptions.population = searchBudget / 4;
        evoOptions.generations = 4;
        evolutionary::EvolutionarySearch evo(c.subgraph, evoOptions);
        auto evoRound = evo.round(model, rngB);
        printSeries("Ansor (evolutionary)",
                    populationSeries(evoRound.trace.visitedScores,
                                     kth, 4));

        // The paper's takeaway, quantified: the best-to-kth spread.
        auto finalSpread = [&](const std::vector<double> &scores) {
            auto series = populationSeries(scores, kth, 1);
            return series.back().best - series.back().kth;
        };
        std::printf("  final best-to-%dth spread: Felix %.3f vs "
                    "Ansor %.3f\n\n",
                    kth,
                    finalSpread(gradRound.trace.visitedScores),
                    finalSpread(evoRound.trace.visitedScores));
        std::fflush(stdout);
    }
    std::printf("paper reference: Felix's population converges "
                "uniformly (narrow band), Ansor's spread stays much\n"
                "wider — the randomness of evolutionary search "
                "follows the cost model less effectively (§6.2).\n");
    return 0;
}
