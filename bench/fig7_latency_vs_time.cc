/**
 * @file
 * Figure 7: best network latency vs tuning time for Felix and
 * Ansor-TenSet on the three devices (batch 1). Prints each curve as
 * a downsampled (time, latency) series — the same data the paper
 * plots. Felix's curve must drop much earlier; both converge to
 * similar levels (same search space, §6.2).
 */
#include <cstdio>

#include "bench/common.h"
#include "support/string_util.h"

using namespace felix;
using namespace felix::bench;

namespace {

void
printCurve(const char *label,
           const std::vector<tuner::TimelinePoint> &timeline,
           double budget)
{
    std::printf("  %s:\n", label);
    // Downsample to ~16 points, log-ish spacing early.
    double step = budget / 16.0;
    double nextTime = 0.0;
    double best = timeline.empty()
                      ? 0.0
                      : timeline.front().networkLatencySec;
    std::string line = "    ";
    int printed = 0;
    size_t idx = 0;
    for (double t = 0.0; t <= budget + 1e-9; t += step) {
        nextTime = t;
        while (idx < timeline.size() &&
               timeline[idx].timeSec <= nextTime) {
            best = timeline[idx].networkLatencySec;
            ++idx;
        }
        line += strformat("(%5.0fs, %8.3fms) ", nextTime, best * 1e3);
        if (++printed % 4 == 0) {
            std::printf("%s\n", line.c_str());
            line = "    ";
        }
    }
    if (line.size() > 4)
        std::printf("%s\n", line.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions options = parseArgs(argc, argv);
    printHeader("Figure 7: latency vs tuning time, Felix vs "
                "Ansor-TenSet (batch 1)",
                options);
    const double budget = defaultBudget(options);
    const int batch = 1;

    for (sim::DeviceKind device : selectedDevices(options)) {
        std::printf("--- %s ---\n",
                    sim::deviceConfig(device).name.c_str());
        for (const models::NetworkSpec &spec :
             models::evaluationNetworks()) {
            if (device == sim::DeviceKind::XavierNX &&
                !spec.runsOnXavier)
                continue;
            std::printf("%s:\n", spec.name.c_str());
            auto felixTuner =
                tuneNetwork(spec, batch, device,
                            felixOptions(options), budget, options);
            printCurve("Felix", felixTuner->timeline(), budget);
            auto ansorTuner =
                tuneNetwork(spec, batch, device,
                            ansorOptions(options), budget, options);
            printCurve("Ansor-TenSet", ansorTuner->timeline(), budget);
            std::printf(
                "  final: Felix %s vs Ansor-TenSet %s\n\n",
                fmtMs(felixTuner->networkLatency()).c_str(),
                fmtMs(ansorTuner->networkLatency()).c_str());
            std::fflush(stdout);
        }
    }
    std::printf("paper reference: Felix's curve drops significantly "
                "earlier; both tools converge to similar latency\n"
                "because they share the same schedule search space "
                "(§6.2, Fig. 7).\n");
    return 0;
}
