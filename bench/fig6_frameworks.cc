/**
 * @file
 * Figure 6: DNN inference performance of Felix vs the off-the-shelf
 * inference frameworks (PyTorch, TensorFlow, TensorRT) on the three
 * devices, normalized per network to the best framework. Also
 * reports the geometric-mean speedup of Felix over each framework
 * (paper §6.1: 1.41x / 1.50x / 1.70x over the per-device averages).
 */
#include <cstdio>

#include "bench/common.h"
#include "support/math_util.h"
#include "support/string_util.h"

using namespace felix;
using namespace felix::bench;

int
main(int argc, char **argv)
{
    BenchOptions options = parseArgs(argc, argv);
    printHeader("Figure 6: Felix vs off-the-shelf inference frameworks",
                options);
    const double budget = defaultBudget(options);
    const int batch = 1;

    for (sim::DeviceKind device : selectedDevices(options)) {
        const sim::DeviceConfig &config = sim::deviceConfig(device);
        std::printf("--- %s ---\n", config.name.c_str());
        std::vector<std::vector<std::string>> rows;
        rows.push_back({"Network", "PyTorch", "TensorFlow",
                        "TensorRT", "Felix", "Felix latency"});

        std::vector<double> speedupPt, speedupTf, speedupTrt;
        for (const models::NetworkSpec &spec :
             models::evaluationNetworks()) {
            if (device == sim::DeviceKind::XavierNX &&
                !spec.runsOnXavier)
                continue;
            auto tasks = extractSubgraphs(spec.build(batch));
            double lat[3] = {-1, -1, -1};
            int fi = 0;
            for (frameworks::Framework framework :
                 frameworks::allFrameworks()) {
                if (frameworks::frameworkSupports(
                        framework, spec.name, device, batch)) {
                    lat[fi] = frameworks::networkLatency(
                        tasks, config, framework);
                }
                ++fi;
            }
            auto tuner = tuneNetwork(spec, batch, device,
                                     felixOptions(options), budget,
                                     options);
            double felixLat = tuner->networkLatency();

            double best = felixLat;
            for (double l : lat) {
                if (l > 0 && l < best)
                    best = l;
            }
            auto norm = [&](double l) {
                return l > 0 ? strformat("%.2f", best / l)
                             : std::string("-");
            };
            rows.push_back({spec.name, norm(lat[0]), norm(lat[1]),
                            norm(lat[2]), norm(felixLat),
                            fmtMs(felixLat)});
            if (lat[0] > 0)
                speedupPt.push_back(lat[0] / felixLat);
            if (lat[1] > 0)
                speedupTf.push_back(lat[1] / felixLat);
            if (lat[2] > 0)
                speedupTrt.push_back(lat[2] / felixLat);
        }
        std::printf("%s", renderTable(rows).c_str());
        std::printf(
            "geomean Felix speedup: %.2fx vs PyTorch, %.2fx vs "
            "TensorFlow, %.2fx vs TensorRT\n\n",
            geomean(speedupPt), geomean(speedupTf),
            geomean(speedupTrt));
        std::fflush(stdout);
    }
    std::printf("paper reference: Felix geomean speedups 1.41x "
                "(A5000), 1.50x (A10G), 1.70x (Xavier NX) over the\n"
                "evaluated frameworks; libraries stay ahead only on "
                "R3d-18 (3d convolutions, paper Fig. 6/9).\n");
    return 0;
}
