/**
 * @file
 * Ablation: gradient-search hyperparameters — the nSeeds x nSteps
 * budget split and the constraint penalty coefficient lambda
 * (paper §5 defaults: 8 seeds, 200 steps, lambda controls Eqn. 4's
 * penalty strength).
 */
#include <cstdio>

#include "bench/common.h"
#include "optim/search.h"
#include "sim/gpu_model.h"
#include "support/math_util.h"
#include "support/string_util.h"

using namespace felix;
using namespace felix::bench;

namespace {

double
quality(const tir::SubgraphDef &subgraph,
        const optim::GradSearchOptions &grad,
        const costmodel::CostModel &model,
        const sim::DeviceConfig &device, uint64_t seed, int rounds)
{
    optim::GradientSearch search(subgraph, grad);
    Rng rng(seed);
    double best = 1e18;
    for (int round = 0; round < rounds; ++round) {
        auto result = search.round(model, rng);
        for (const auto &candidate : result.toMeasure) {
            best = std::min(best,
                            sim::kernelLatency(candidate.rawFeatures,
                                               device));
        }
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions options = parseArgs(argc, argv);
    printHeader("Ablation: nSeeds x nSteps split and penalty lambda",
                options);
    const auto &device = sim::deviceConfig(sim::DeviceKind::A5000);
    auto model = modelFor(sim::DeviceKind::A5000, options);
    const int rounds = options.full ? 6 : 3;
    const int numSeeds = options.full ? 5 : 3;
    auto subgraph = tir::dense(512, 1024, 1024, true);

    // Constant search budget of 1600 predicted schedules per round,
    // split differently between restarts and steps.
    std::printf("budget split (1600 schedules/round):\n");
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"nSeeds x nSteps", "best latency"});
    for (auto [seeds, steps] : std::vector<std::pair<int, int>>{
             {1, 1600}, {4, 400}, {8, 200}, {32, 50}, {160, 10}}) {
        optim::GradSearchOptions grad;
        grad.nSeeds = seeds;
        grad.nSteps = steps;
        std::vector<double> bests;
        for (int s = 0; s < numSeeds; ++s) {
            bests.push_back(quality(subgraph, grad, model, device,
                                    options.seed + s, rounds));
        }
        rows.push_back({strformat("%4d x %4d", seeds, steps),
                        fmtMs(mean(bests))});
        std::fflush(stdout);
    }
    std::printf("%s\n", renderTable(rows).c_str());

    std::printf("penalty coefficient lambda (Eqn. 4):\n");
    rows.clear();
    rows.push_back({"lambda", "best latency"});
    for (double lambda : {0.0, 0.1, 1.0, 10.0, 100.0}) {
        optim::GradSearchOptions grad;
        grad.nSeeds = 8;
        grad.nSteps = 100;
        grad.lambda = lambda;
        std::vector<double> bests;
        for (int s = 0; s < numSeeds; ++s) {
            bests.push_back(quality(subgraph, grad, model, device,
                                    options.seed + s, rounds));
        }
        rows.push_back({strformat("%.1f", lambda),
                        fmtMs(mean(bests))});
        std::fflush(stdout);
    }
    std::printf("%s\n", renderTable(rows).c_str());
    std::printf("expected: a handful of restarts with a few hundred "
                "steps each is the sweet spot (the paper's 8 x 200);\n"
                "lambda = 0 lets iterates drift infeasible (fewer "
                "valid rounded candidates), huge lambda freezes the\n"
                "iterate at its seed.\n");
    return 0;
}
